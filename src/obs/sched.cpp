#include "obs/sched.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ripki::obs {

namespace {

const char* event_kind_name(SchedTelemetry::EventKind kind) {
  switch (kind) {
    case SchedTelemetry::EventKind::kRun: return "run";
    case SchedTelemetry::EventKind::kIdle: return "idle";
    case SchedTelemetry::EventKind::kStealSuccess: return "steal";
    case SchedTelemetry::EventKind::kStealFail: return "steal-fail";
    case SchedTelemetry::EventKind::kStage: return "stage";
  }
  return "?";
}

std::string fmt_ms(double ms) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

std::string fmt_frac(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

// Identity of the calling thread's lane. The owner pointer disambiguates
// telemetry instances (a worker of pool A must not write into pool B's
// telemetry when both exist in one process).
thread_local SchedTelemetry* t_owner = nullptr;
thread_local void* t_lane = nullptr;

}  // namespace

const char* sweep_stage_name(SweepStage stage) {
  switch (stage) {
    case SweepStage::kDns: return "dns";
    case SweepStage::kCovering: return "covering";
    case SweepStage::kValidation: return "validation";
    case SweepStage::kEmit: return "emit";
  }
  return "?";
}

/// One worker's (or the external thread's) private recording surface.
/// Separately heap-allocated and cacheline-aligned so two lanes never
/// share a line; the mutex is only ever contended by the exporter.
struct alignas(64) SchedTelemetry::Lane {
  mutable std::mutex mutex;
  std::vector<Event> ring;  // ring[.. size), head = next write slot
  std::size_t head = 0;
  std::size_t size = 0;
  std::uint64_t dropped = 0;

  std::uint64_t tasks = 0;
  std::uint64_t own_pops = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_fails = 0;
  std::uint64_t run_ns = 0;
  std::uint64_t idle_ns = 0;
  std::array<std::uint64_t, kSweepStageCount> stage_ns{};
  std::uint64_t last_run_end_us = 0;

  void push(Event event, std::size_t capacity) {
    if (size < capacity) {
      ring.push_back(event);
      ++size;
      head = size % capacity;
      return;
    }
    ring[head] = event;
    head = (head + 1) % capacity;
    ++dropped;
  }
};

SchedTelemetry::SchedTelemetry(Registry* registry)
    : SchedTelemetry(registry, Options{}) {}

SchedTelemetry::SchedTelemetry(Registry* registry, Options options)
    : options_([&] {
        Options o = options;
        o.ring_capacity = std::max<std::size_t>(1, o.ring_capacity);
        o.queue_sample_period_us =
            std::max<std::uint64_t>(100, o.queue_sample_period_us);
        return o;
      }()),
      epoch_(std::chrono::steady_clock::now()),
      queue_ring_(options.queue_ring_capacity) {
  if (registry != nullptr) {
    steal_latency_ = &registry->histogram("ripki.exec.steal_latency_us");
    task_run_ = &registry->histogram("ripki.exec.task_run_us");
    queue_depth_gauge_ = &registry->gauge("ripki.exec.queue_depth");
    registry->describe("ripki.exec.steal_latency_us",
                       "Victim-scan duration of successful steals (µs)");
    registry->describe("ripki.exec.task_run_us",
                       "Execution time of individual pool tasks (µs)");
    registry->describe("ripki.exec.queue_depth",
                       "Tasks queued across all worker deques at the last "
                       "scheduler sample");
  }
}

SchedTelemetry::~SchedTelemetry() { stop_queue_sampler(); }

void SchedTelemetry::begin_run(std::size_t workers) {
  std::lock_guard lock(lanes_mutex_);
  lanes_.clear();
  lanes_.reserve(workers + 1);
  for (std::size_t i = 0; i < workers + 1; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->ring.reserve(options_.ring_capacity);
    lanes_.push_back(std::move(lane));
  }
  window_begin_us_.store(now_us(), std::memory_order_relaxed);
}

std::size_t SchedTelemetry::lanes() const {
  std::lock_guard lock(lanes_mutex_);
  return lanes_.size();
}

std::size_t SchedTelemetry::external_lane() const {
  std::lock_guard lock(lanes_mutex_);
  return lanes_.empty() ? 0 : lanes_.size() - 1;
}

void SchedTelemetry::attach_lane(std::size_t lane) {
  std::lock_guard lock(lanes_mutex_);
  if (lane >= lanes_.size()) return;  // stale attach after a begin_run shrink
  t_owner = this;
  t_lane = lanes_[lane].get();
}

void SchedTelemetry::detach_lane() {
  if (t_owner != this) return;
  t_owner = nullptr;
  t_lane = nullptr;
}

bool SchedTelemetry::attached() const { return t_owner == this; }

SchedTelemetry::Lane* SchedTelemetry::current_lane() const {
  return t_owner == this ? static_cast<Lane*>(t_lane) : nullptr;
}

std::uint64_t SchedTelemetry::now_us() const {
  const auto now = std::chrono::steady_clock::now();
  if (now < epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - epoch_)
          .count());
}

void SchedTelemetry::on_own_pop() {
  Lane* lane = current_lane();
  if (lane == nullptr) return;
  std::lock_guard lock(lane->mutex);
  ++lane->own_pops;
}

void SchedTelemetry::on_steal(bool success, std::uint64_t begin_us,
                              std::uint64_t end_us) {
  Lane* lane = current_lane();
  if (lane == nullptr) return;
  {
    std::lock_guard lock(lane->mutex);
    if (success) {
      ++lane->steals;
    } else {
      ++lane->steal_fails;
    }
    lane->push({begin_us, end_us,
                success ? EventKind::kStealSuccess : EventKind::kStealFail,
                SweepStage::kDns},
               options_.ring_capacity);
  }
  if (success && steal_latency_ != nullptr) {
    steal_latency_->observe(static_cast<double>(end_us - begin_us));
  }
}

void SchedTelemetry::on_task_run(std::uint64_t begin_us,
                                 std::uint64_t end_us) {
  Lane* lane = current_lane();
  if (lane == nullptr) return;
  {
    std::lock_guard lock(lane->mutex);
    ++lane->tasks;
    lane->run_ns += (end_us - begin_us) * 1000;
    lane->last_run_end_us = end_us;
    lane->push({begin_us, end_us, EventKind::kRun, SweepStage::kDns},
               options_.ring_capacity);
  }
  if (task_run_ != nullptr) {
    task_run_->observe(static_cast<double>(end_us - begin_us));
  }
}

void SchedTelemetry::on_idle(std::uint64_t begin_us, std::uint64_t end_us) {
  Lane* lane = current_lane();
  if (lane == nullptr) return;
  std::lock_guard lock(lane->mutex);
  lane->idle_ns += (end_us - begin_us) * 1000;
  lane->push({begin_us, end_us, EventKind::kIdle, SweepStage::kDns},
             options_.ring_capacity);
}

void SchedTelemetry::on_stage(SweepStage stage, std::uint64_t begin_us,
                              std::uint64_t end_us) {
  Lane* lane = current_lane();
  if (lane == nullptr) return;
  std::lock_guard lock(lane->mutex);
  lane->stage_ns[static_cast<std::size_t>(stage)] +=
      (end_us - begin_us) * 1000;
  lane->push({begin_us, end_us, EventKind::kStage, stage},
             options_.ring_capacity);
}

void SchedTelemetry::start_queue_sampler(
    std::function<std::vector<std::size_t>()> depths) {
  stop_queue_sampler();
  depth_source_ = std::move(depths);
  sampler_stop_.store(false, std::memory_order_release);
  sampler_ = std::thread([this] {
    const auto period =
        std::chrono::microseconds(options_.queue_sample_period_us);
    const double period_s =
        static_cast<double>(options_.queue_sample_period_us) / 1e6;
    while (!sampler_stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(period);
      const std::vector<std::size_t> depths = depth_source_();
      std::vector<MetricSnapshot> collected;
      collected.reserve(depths.size() + 1);
      std::size_t total = 0;
      for (std::size_t i = 0; i < depths.size(); ++i) {
        MetricSnapshot snap;
        snap.name = "ripki.exec.queue_depth.worker" + std::to_string(i);
        snap.kind = MetricSnapshot::Kind::kGauge;
        snap.gauge_value = static_cast<std::int64_t>(depths[i]);
        collected.push_back(std::move(snap));
        total += depths[i];
      }
      MetricSnapshot sum;
      sum.name = "ripki.exec.queue_depth.total";
      sum.kind = MetricSnapshot::Kind::kGauge;
      sum.gauge_value = static_cast<std::int64_t>(total);
      collected.push_back(std::move(sum));
      queue_ring_.record(std::move(collected), period_s);
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->set(static_cast<std::int64_t>(total));
      }
    }
  });
}

void SchedTelemetry::stop_queue_sampler() {
  sampler_stop_.store(true, std::memory_order_release);
  if (sampler_.joinable()) sampler_.join();
  depth_source_ = nullptr;
}

SchedTelemetry::Snapshot SchedTelemetry::snapshot() const {
  Snapshot out;
  out.window_begin_us = window_begin_us_.load(std::memory_order_relaxed);
  out.window_end_us = std::max(now_us(), out.window_begin_us);
  std::lock_guard lanes_lock(lanes_mutex_);
  out.lanes.reserve(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const Lane& lane = *lanes_[i];
    std::lock_guard lock(lane.mutex);
    LaneSnapshot snap;
    snap.lane = i;
    snap.external = i + 1 == lanes_.size();
    snap.tasks = lane.tasks;
    snap.own_pops = lane.own_pops;
    snap.steals = lane.steals;
    snap.steal_fails = lane.steal_fails;
    snap.run_ns = lane.run_ns;
    snap.idle_ns = lane.idle_ns;
    snap.stage_ns = lane.stage_ns;
    snap.last_run_end_us = lane.last_run_end_us;
    snap.events_dropped = lane.dropped;
    snap.events.reserve(lane.size);
    if (lane.size < options_.ring_capacity) {
      snap.events = lane.ring;
    } else {
      for (std::size_t j = 0; j < lane.size; ++j) {
        snap.events.push_back(
            lane.ring[(lane.head + j) % options_.ring_capacity]);
      }
    }
    out.lanes.push_back(std::move(snap));
  }
  return out;
}

SchedTelemetry::Snapshot::Aggregates SchedTelemetry::Snapshot::aggregates()
    const {
  Aggregates out;
  const double window_ms_clamped = std::max(window_ms(), 1e-6);
  // Aggregates over the worker lanes; the external lane only joins when
  // it is the whole story (a serial run has no workers).
  const bool workers_only = lanes.size() > 1;
  for (const LaneSnapshot& lane : lanes) {
    const bool worker = !lane.external || !workers_only;
    // Stage attribution sums over every lane: the serial path charges the
    // external lane, the parallel path the worker lanes.
    for (std::size_t s = 0; s < kSweepStageCount; ++s) {
      out.stage_ms[s] += static_cast<double>(lane.stage_ns[s]) / 1e6;
    }
    if (!worker) continue;
    ++out.workers;
    out.tasks += lane.tasks;
    out.own_pops += lane.own_pops;
    out.steals += lane.steals;
    out.steal_fails += lane.steal_fails;
    out.run_ns += lane.run_ns;
    const std::uint64_t tail_from =
        lane.last_run_end_us != 0 ? lane.last_run_end_us : window_begin_us;
    out.idle_tail_ms =
        std::max(out.idle_tail_ms,
                 static_cast<double>(window_end_us - tail_from) / 1000.0);
  }
  if (out.workers > 0) {
    out.utilization_pct =
        static_cast<double>(out.run_ns) / 1e6 /
        (window_ms_clamped * static_cast<double>(out.workers)) * 100.0;
  }
  if (out.tasks > 0) {
    out.steal_ratio =
        static_cast<double>(out.steals) / static_cast<double>(out.tasks);
  }
  return out;
}

std::string SchedTelemetry::render_json() const {
  const Snapshot snap = snapshot();
  const double window_ms = std::max(snap.window_ms(), 1e-6);
  const Snapshot::Aggregates agg = snap.aggregates();

  std::ostringstream os;
  os << "{\"schedz\":{\"workers\":"
     << (snap.lanes.size() > 1 ? snap.lanes.size() - 1 : 0)
     << ",\"window_ms\":" << fmt_ms(window_ms)
     << ",\"utilization_pct\":" << fmt_ms(agg.utilization_pct)
     << ",\"steal_ratio\":" << fmt_frac(agg.steal_ratio)
     << ",\"idle_tail_ms\":" << fmt_ms(agg.idle_tail_ms)
     << ",\"tasks\":" << agg.tasks << ",\"own_pops\":" << agg.own_pops
     << ",\"steals\":" << agg.steals
     << ",\"steal_fails\":" << agg.steal_fails << ",\"stage_ms\":{";
  for (std::size_t s = 0; s < kSweepStageCount; ++s) {
    if (s > 0) os << ',';
    os << '"' << sweep_stage_name(static_cast<SweepStage>(s))
       << "\":" << fmt_ms(agg.stage_ms[s]);
  }
  os << "},\"lanes\":[";
  for (std::size_t i = 0; i < snap.lanes.size(); ++i) {
    const LaneSnapshot& lane = snap.lanes[i];
    if (i > 0) os << ',';
    const double lane_tail =
        static_cast<double>(snap.window_end_us -
                            (lane.last_run_end_us != 0
                                 ? lane.last_run_end_us
                                 : snap.window_begin_us)) /
        1000.0;
    os << "{\"lane\":" << lane.lane
       << ",\"external\":" << (lane.external ? "true" : "false")
       << ",\"utilization_pct\":"
       << fmt_ms(static_cast<double>(lane.run_ns) / 1e6 / window_ms * 100.0)
       << ",\"run_ms\":" << fmt_ms(static_cast<double>(lane.run_ns) / 1e6)
       << ",\"idle_ms\":" << fmt_ms(static_cast<double>(lane.idle_ns) / 1e6)
       << ",\"idle_tail_ms\":" << fmt_ms(lane_tail)
       << ",\"tasks\":" << lane.tasks << ",\"own_pops\":" << lane.own_pops
       << ",\"steals\":" << lane.steals
       << ",\"steal_fails\":" << lane.steal_fails
       << ",\"events_dropped\":" << lane.events_dropped << ",\"stage_ms\":{";
    for (std::size_t s = 0; s < kSweepStageCount; ++s) {
      if (s > 0) os << ',';
      os << '"' << sweep_stage_name(static_cast<SweepStage>(s)) << "\":"
         << fmt_ms(static_cast<double>(lane.stage_ns[s]) / 1e6);
    }
    os << "}}";
  }
  os << "],\"queue_depth\":" << queue_ring_.render_json() << "}}";
  return os.str();
}

void SchedTelemetry::write_trace_events(std::ostream& os, bool& first,
                                        std::int64_t offset_us) const {
  const Snapshot snap = snapshot();
  const auto comma = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const LaneSnapshot& lane : snap.lanes) {
    comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":"
       << lane.lane << ",\"args\":{\"name\":\""
       << (lane.external ? std::string("external")
                         : "worker-" + std::to_string(lane.lane))
       << "\"}}";
    for (const Event& event : lane.events) {
      comma();
      const char* name = event.kind == EventKind::kStage
                             ? sweep_stage_name(event.stage)
                             : event_kind_name(event.kind);
      os << "{\"name\":\"" << name << "\",\"cat\":\"sched\",\"ph\":\"X\","
         << "\"ts\":"
         << static_cast<std::int64_t>(event.begin_us) + offset_us
         << ",\"dur\":" << (event.end_us - event.begin_us)
         << ",\"pid\":2,\"tid\":" << lane.lane << '}';
    }
  }
}

void SchedTelemetry::export_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"ripki-sched\"}}";
  bool first = false;
  write_trace_events(os, first, 0);
  os << "]}\n";
}

std::string SchedTelemetry::chrome_trace_json() const {
  std::ostringstream os;
  export_chrome_trace(os);
  return os.str();
}

void export_combined_trace(const EventTracer* tracer,
                           const SchedTelemetry* sched, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ',';
    first = false;
  };

  if (tracer != nullptr) {
    // Shift tracer timestamps onto the scheduler's epoch so both
    // timelines share one axis (Perfetto aligns on raw ts values).
    std::int64_t offset_us = 0;
    if (sched != nullptr) {
      offset_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      tracer->epoch() - sched->epoch())
                      .count();
    }
    const auto events = balance_events(tracer->snapshot());
    std::uint32_t max_tid = 0;
    for (const auto& event : events) max_tid = std::max(max_tid, event.tid);
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
          "\"args\":{\"name\":\"ripki\"}}";
    if (!events.empty()) {
      for (std::uint32_t tid = 0; tid <= max_tid; ++tid) {
        comma();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << tid << ",\"args\":{\"name\":\"track-" << tid << "\"}}";
      }
    }
    for (const auto& event : events) {
      comma();
      os << "{\"name\":\"" << trace_json_escape(event.name)
         << "\",\"cat\":\"ripki\",\"ph\":\""
         << (event.phase == TraceEvent::Phase::kBegin ? 'B' : 'E')
         << "\",\"ts\":" << static_cast<std::int64_t>(event.ts_us) + offset_us
         << ",\"pid\":1,\"tid\":" << event.tid << '}';
    }
  }

  if (sched != nullptr) {
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
          "\"args\":{\"name\":\"ripki-sched\"}}";
    sched->write_trace_events(os, first, 0);
  }
  os << "]}\n";
}

std::string combined_trace_json(const EventTracer* tracer,
                                const SchedTelemetry* sched) {
  std::ostringstream os;
  export_combined_trace(tracer, sched, os);
  return os.str();
}

}  // namespace ripki::obs
