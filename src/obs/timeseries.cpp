#include "obs/timeseries.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace ripki::obs {

namespace {

std::string fmt_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

TimeSeriesRing::TimeSeriesRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void TimeSeriesRing::record(std::vector<MetricSnapshot> collected,
                            double seconds) {
  std::lock_guard lock(mutex_);
  Interval interval;
  interval.seq = ++ticks_;
  interval.seconds = std::max(seconds, 1e-9);
  interval.deltas = delta_snapshots(previous_, collected);
  previous_ = std::move(collected);
  if (intervals_.size() >= capacity_) {
    intervals_.erase(intervals_.begin());
  }
  intervals_.push_back(std::move(interval));
}

std::vector<TimeSeriesRing::Interval> TimeSeriesRing::history() const {
  std::lock_guard lock(mutex_);
  return intervals_;
}

std::size_t TimeSeriesRing::size() const {
  std::lock_guard lock(mutex_);
  return intervals_.size();
}

std::uint64_t TimeSeriesRing::ticks() const {
  std::lock_guard lock(mutex_);
  return ticks_;
}

std::string TimeSeriesRing::render_json() const {
  const std::vector<Interval> intervals = history();

  // Union of metric names across the window: a metric registered mid-way
  // pads earlier intervals with zeros so every series is rectangular.
  std::map<std::string, MetricSnapshot::Kind> names;
  for (const Interval& interval : intervals) {
    for (const MetricSnapshot& m : interval.deltas) {
      names.emplace(m.name, m.kind);
    }
  }

  std::ostringstream os;
  os << "{\"varz\":{\"ticks\":" << (intervals.empty() ? 0 : intervals.back().seq)
     << ",\"intervals\":[";
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"seq\":" << intervals[i].seq << ",\"seconds\":"
       << fmt_number(intervals[i].seconds) << '}';
  }
  os << "],\"series\":{";

  bool first_series = true;
  for (const auto& [name, kind] : names) {
    if (!first_series) os << ',';
    first_series = false;
    os << '"' << name << "\":{";

    // One pass per field keeps the arrays aligned with `intervals`.
    const auto emit_array = [&](const char* label, auto&& value_of) {
      os << '"' << label << "\":[";
      for (std::size_t i = 0; i < intervals.size(); ++i) {
        if (i > 0) os << ',';
        const MetricSnapshot* found = nullptr;
        for (const MetricSnapshot& m : intervals[i].deltas) {
          if (m.name == name) {
            found = &m;
            break;
          }
        }
        os << (found != nullptr ? value_of(*found, intervals[i].seconds)
                                : std::string("0"));
      }
      os << ']';
    };

    switch (kind) {
      case MetricSnapshot::Kind::kCounter:
        os << "\"kind\":\"counter\",";
        emit_array("deltas", [](const MetricSnapshot& m, double) {
          return std::to_string(m.counter_value);
        });
        os << ',';
        emit_array("per_sec", [](const MetricSnapshot& m, double seconds) {
          return fmt_number(static_cast<double>(m.counter_value) / seconds);
        });
        break;
      case MetricSnapshot::Kind::kGauge:
        os << "\"kind\":\"gauge\",";
        emit_array("values", [](const MetricSnapshot& m, double) {
          return std::to_string(m.gauge_value);
        });
        break;
      case MetricSnapshot::Kind::kHistogram:
        os << "\"kind\":\"histogram\",";
        emit_array("counts", [](const MetricSnapshot& m, double) {
          return std::to_string(m.count);
        });
        os << ',';
        emit_array("per_sec", [](const MetricSnapshot& m, double seconds) {
          return fmt_number(static_cast<double>(m.count) / seconds);
        });
        os << ',';
        emit_array("p50", [](const MetricSnapshot& m, double) {
          return fmt_number(m.p50);
        });
        os << ',';
        emit_array("p99", [](const MetricSnapshot& m, double) {
          return fmt_number(m.p99);
        });
        break;
    }
    os << '}';
  }
  os << "}}}";
  return os.str();
}

}  // namespace ripki::obs
