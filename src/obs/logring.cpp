#include "obs/logring.hpp"

namespace ripki::obs {

LogRing::LogRing(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void LogRing::append(const LogRecord& record) {
  std::lock_guard lock(mutex_);
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(record);
  ++total_;
  if (record.level == LogLevel::kError && dump_on_error_ != nullptr &&
      !error_dumped_) {
    error_dumped_ = true;
    *dump_on_error_ << "-- log flight recorder (first error) --\n";
    render_locked(*dump_on_error_);
  }
}

std::vector<LogRecord> LogRing::snapshot() const {
  std::lock_guard lock(mutex_);
  return {records_.begin(), records_.end()};
}

std::size_t LogRing::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

std::uint64_t LogRing::total() const {
  std::lock_guard lock(mutex_);
  return total_;
}

std::uint64_t LogRing::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void LogRing::render_locked(std::ostream& os) const {
  os << "# last " << records_.size() << " of " << total_ << " records ("
     << dropped_ << " evicted)\n";
  for (const auto& record : records_) {
    os << Logger::format(record) << '\n';
  }
}

void LogRing::render(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  render_locked(os);
}

void LogRing::set_dump_on_error(std::ostream* os) {
  std::lock_guard lock(mutex_);
  dump_on_error_ = os;
}

void LogRing::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
  total_ = 0;
  dropped_ = 0;
  error_dumped_ = false;
}

}  // namespace ripki::obs
