// Trace spans: RAII scoped timers with parent/child nesting.
//
// A span opened while another span is live on the same thread becomes its
// child; the full dotted path ("pipeline.run.stage2_dns.resolve") names a
// duration histogram `ripki.trace.<path>` in the registry, so repeated
// spans (one per domain, say) aggregate into count/total/percentiles
// instead of an unbounded event list.
//
// A span constructed with a null registry is inert: no clock read, no
// allocation, no thread-local traffic — instrumented code paths cost
// nothing when observability is off.
//
// When the registry carries an EventTracer (Registry::set_tracer), spans
// additionally emit begin/end events into its timeline ring; without one,
// the only extra cost is a relaxed pointer load per span.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace ripki::obs {

/// Metric-name prefix for span duration histograms.
inline constexpr std::string_view kTracePrefix = "ripki.trace.";

class Span {
 public:
  Span(Registry* registry, std::string_view name);
  ~Span() { stop(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Records the duration now instead of at scope exit; idempotent.
  void stop();

  bool active() const { return registry_ != nullptr && !stopped_; }
  std::uint64_t elapsed_ns() const;
  /// Dotted path including every ancestor ("" for an inert span).
  const std::string& path() const { return path_; }

  /// The innermost live span on this thread, or nullptr.
  static const Span* current();

 private:
  Registry* registry_ = nullptr;
  EventTracer* tracer_ = nullptr;  // registry's tracer, cached at open
  Span* parent_ = nullptr;
  std::string path_;
  std::chrono::steady_clock::time_point start_{};
  bool stopped_ = true;
  bool traced_ = false;  // begin event recorded (not sampled out)
};

/// Records `ns` under the current span's path extended with `name` — for
/// durations accumulated manually (e.g. trie-insert time summed across a
/// parse loop) where a scoped timer per item would be too intrusive.
void record_duration_ns(Registry* registry, std::string_view name,
                        std::uint64_t ns);

/// Renders every `ripki.trace.*` histogram as an aligned table — span
/// path, call count, total/mean milliseconds, p50/p90/p99 microseconds —
/// the stage-timing breakdown printed after a pipeline run. The snapshot
/// overload also accepts delta_snapshots() output for per-interval views.
void render_stage_report(const std::vector<MetricSnapshot>& metrics,
                         std::ostream& os);
void render_stage_report(const Registry& registry, std::ostream& os);
std::string stage_report(const Registry& registry);
std::string stage_report(const std::vector<MetricSnapshot>& metrics);

}  // namespace ripki::obs
