#include "obs/request_context.hpp"

#include <cstdio>

namespace ripki::obs {

namespace {

thread_local RequestContext* g_current_request = nullptr;

}  // namespace

RequestContext::RequestContext(std::uint64_t id,
                               std::chrono::steady_clock::time_point start)
    : id_(id), id_hex_(format_id(id)), start_(start) {
  spans_.reserve(16);
}

std::string RequestContext::format_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::uint64_t RequestContext::parse_id(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  std::uint64_t id = 0;
  for (char c : hex) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A') + 10;
    else return 0;
    id = (id << 4) | digit;
  }
  return id;
}

std::uint64_t RequestContext::elapsed_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void RequestContext::record_span(
    const std::string& path, std::chrono::steady_clock::time_point span_start,
    std::uint64_t duration_ns) {
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return;
  }
  // Spans opened before the request scope (clock skew across the executor
  // hop) clamp to offset 0 rather than going negative.
  const auto offset = span_start >= start_
                          ? span_start - start_
                          : std::chrono::steady_clock::duration::zero();
  spans_.push_back(SpanRecord{
      path,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(offset)
              .count()),
      duration_ns / 1000});
}

RequestContext* RequestContext::current() { return g_current_request; }

RequestScope::RequestScope(RequestContext* context) {
  if (context == nullptr) return;
  previous_ = g_current_request;
  g_current_request = context;
  installed_ = true;
}

RequestScope::~RequestScope() {
  if (installed_) g_current_request = previous_;
}

}  // namespace ripki::obs
