#include "obs/telemetry.hpp"

#include <sstream>
#include <utility>

#include "util/url.hpp"

namespace ripki::obs {

// --- health ----------------------------------------------------------------

void HealthRegistry::set(std::string_view subsystem, bool healthy,
                         std::string_view detail) {
  std::lock_guard lock(mutex_);
  statuses_[std::string(subsystem)] =
      HealthStatus{healthy, std::string(detail)};
}

void HealthRegistry::register_check(std::string_view subsystem, Check check) {
  std::lock_guard lock(mutex_);
  checks_[std::string(subsystem)] = std::move(check);
}

std::vector<HealthRegistry::Result> HealthRegistry::evaluate() const {
  // Copy under the lock, evaluate callbacks outside it so a check may
  // itself consult health-aware code without deadlocking.
  std::map<std::string, HealthStatus, std::less<>> statuses;
  std::map<std::string, Check, std::less<>> checks;
  {
    std::lock_guard lock(mutex_);
    statuses = statuses_;
    checks = checks_;
  }
  for (const auto& [name, check] : checks) {
    statuses[name] = check ? check() : HealthStatus{false, "null check"};
  }
  std::vector<Result> out;
  out.reserve(statuses.size());
  for (auto& [name, status] : statuses) {
    out.push_back(Result{name, std::move(status)});
  }
  return out;
}

bool HealthRegistry::healthy() const {
  for (const auto& result : evaluate()) {
    if (!result.status.healthy) return false;
  }
  return true;
}

// --- HTTP server -----------------------------------------------------------

TelemetryServer::TelemetryServer(Options options, EventTracer* tracer,
                                 LogRing* log_ring, HealthRegistry* health)
    : tracer_(tracer),
      log_ring_(log_ring),
      health_(health),
      server_(serve::HttpServerOptions{
          .port = options.port,
          .bind_address = std::move(options.bind_address),
          // Telemetry is a scrape target, not a public API: a handful of
          // collectors, small responses, handlers cheap enough to run
          // inline on the loop thread.
          .max_connections = 64,
          .idle_timeout = std::chrono::milliseconds(10'000),
          .parser_limits = {},
      }) {
  server_.set_handler([this](const serve::HttpRequest& request) {
    return dispatch(request.method, request.target);
  });
  register_builtin_routes();
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::register_builtin_routes() {
  set_handler("/", [this] {
    HttpResponse response;
    std::ostringstream os;
    os << "ripki telemetry\n\n";
    std::lock_guard lock(handlers_mutex_);
    for (const auto& [path, handler] : handlers_) os << path << '\n';
    response.body = os.str();
    return response;
  });
  set_handler("/healthz", [this] {
    HttpResponse response;
    if (health_ == nullptr) {
      response.body = "ok (no health registry configured)\n";
      return response;
    }
    std::ostringstream os;
    bool all_healthy = true;
    for (const auto& result : health_->evaluate()) {
      all_healthy = all_healthy && result.status.healthy;
      os << (result.status.healthy ? "ok   " : "FAIL ") << result.subsystem;
      if (!result.status.detail.empty()) os << ": " << result.status.detail;
      os << '\n';
    }
    if (!all_healthy) response.status = 503;
    os << (all_healthy ? "healthy\n" : "unhealthy\n");
    response.body = os.str();
    return response;
  });
  set_handler("/tracez", [this] {
    HttpResponse response;
    response.content_type = "application/json";
    if (tracer_ == nullptr) {
      response.body = "{\"traceEvents\":[]}\n";
      return response;
    }
    response.body = tracer_->chrome_trace_json();
    return response;
  });
  set_handler("/logz", [this] {
    HttpResponse response;
    if (log_ring_ == nullptr) {
      response.body = "(no log ring configured)\n";
      return response;
    }
    std::ostringstream os;
    log_ring_->render(os);
    response.body = os.str();
    return response;
  });
}

void TelemetryServer::set_handler(std::string path, HttpHandler handler) {
  std::lock_guard lock(handlers_mutex_);
  handlers_[std::move(path)] = std::move(handler);
}

HttpResponse TelemetryServer::dispatch(std::string_view method,
                                       std::string_view target) const {
  if (method != "GET") {
    return HttpResponse{405, "text/plain; charset=utf-8",
                        "only GET is supported\n", {}};
  }
  const std::string_view path = util::split_target(target).path;
  HttpHandler handler;
  {
    std::lock_guard lock(handlers_mutex_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    return HttpResponse{404, "text/plain; charset=utf-8",
                        "not found; GET / lists endpoints\n", {}};
  }
  return handler();
}

bool TelemetryServer::start() { return server_.start(); }

void TelemetryServer::stop() { server_.stop(); }

}  // namespace ripki::obs
