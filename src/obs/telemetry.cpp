#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/profiler.hpp"
#include "obs/request_context.hpp"
#include "obs/sched.hpp"
#include "util/strings.hpp"
#include "util/url.hpp"

namespace ripki::obs {

namespace {

/// Value of `key` in a query string ("seconds=2&format=json"); empty when
/// absent or valueless.
std::string_view query_param(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return {};
}

constexpr const char* kText = "text/plain; charset=utf-8";

}  // namespace

HttpResponse profile_capture(SamplingProfiler* profiler,
                             std::string_view query) {
  if (profiler == nullptr) {
    return HttpResponse{503, kText, "no profiler configured\n", {}};
  }
  std::uint64_t seconds = 2;
  if (const std::string_view v = query_param(query, "seconds"); !v.empty()) {
    if (!util::parse_u64(v, seconds)) {
      return HttpResponse{400, kText, "seconds must be a decimal integer\n",
                          {}};
    }
  }
  seconds = std::clamp<std::uint64_t>(seconds, 1, 30);
  const std::string_view format = query_param(query, "format");
  const bool as_json = format == "json";
  if (!format.empty() && !as_json && format != "folded") {
    return HttpResponse{400, kText, "format must be folded or json\n", {}};
  }

  // Window from the current capture sequence so a previous capture's
  // samples (one-shot leftovers or always-on history) are excluded.
  const std::uint64_t from = profiler->sequence();
  const bool one_shot = !profiler->running();
  if (one_shot && !profiler->start()) {
    return HttpResponse{503, kText,
                        "SIGPROF is owned by another profiler instance\n",
                        {}};
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  if (one_shot) profiler->stop();

  HttpResponse response;
  if (as_json) {
    response.content_type = "application/json";
    response.body = profiler->json(from);
  } else {
    response.body = profiler->folded(from);
  }
  return response;
}

// --- health ----------------------------------------------------------------

void HealthRegistry::set(std::string_view subsystem, bool healthy,
                         std::string_view detail) {
  std::lock_guard lock(mutex_);
  statuses_[std::string(subsystem)] =
      HealthStatus{healthy, std::string(detail)};
}

void HealthRegistry::register_check(std::string_view subsystem, Check check) {
  std::lock_guard lock(mutex_);
  checks_[std::string(subsystem)] = std::move(check);
}

std::vector<HealthRegistry::Result> HealthRegistry::evaluate() const {
  // Copy under the lock, evaluate callbacks outside it so a check may
  // itself consult health-aware code without deadlocking.
  std::map<std::string, HealthStatus, std::less<>> statuses;
  std::map<std::string, Check, std::less<>> checks;
  {
    std::lock_guard lock(mutex_);
    statuses = statuses_;
    checks = checks_;
  }
  for (const auto& [name, check] : checks) {
    statuses[name] = check ? check() : HealthStatus{false, "null check"};
  }
  std::vector<Result> out;
  out.reserve(statuses.size());
  for (auto& [name, status] : statuses) {
    out.push_back(Result{name, std::move(status)});
  }
  return out;
}

bool HealthRegistry::healthy() const {
  for (const auto& result : evaluate()) {
    if (!result.status.healthy) return false;
  }
  return true;
}

// --- HTTP server -----------------------------------------------------------

TelemetryServer::TelemetryServer(Options options, EventTracer* tracer,
                                 LogRing* log_ring, HealthRegistry* health)
    : tracer_(tracer),
      log_ring_(log_ring),
      health_(health),
      server_(serve::HttpServerOptions{
          .port = options.port,
          .bind_address = std::move(options.bind_address),
          // Telemetry is a scrape target, not a public API: a handful of
          // collectors, small responses, handlers cheap enough to run
          // inline on the loop thread.
          .max_connections = 64,
          .idle_timeout = std::chrono::milliseconds(10'000),
          .parser_limits = {},
          .clock = {},
          .on_connection_dropped = {},
      }) {
  server_.set_handler([this](const serve::HttpRequest& request) {
    // Request-scoped telemetry: while the handler runs, spans and log
    // records carry the id echoed in X-Ripki-Request-Id.
    RequestContext context(RequestContext::parse_id(request.request_id),
                           std::chrono::steady_clock::now());
    RequestScope scope(&context);
    return dispatch(request.method, request.target);
  });
  register_builtin_routes();
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::register_builtin_routes() {
  set_handler("/", [this] {
    HttpResponse response;
    std::ostringstream os;
    os << "ripki telemetry\n\n";
    std::lock_guard lock(handlers_mutex_);
    std::set<std::string_view> paths;
    for (const auto& [path, handler] : handlers_) paths.insert(path);
    for (const auto& [path, handler] : query_handlers_) paths.insert(path);
    for (const std::string_view path : paths) os << path << '\n';
    response.body = os.str();
    return response;
  });
  set_query_handler("/pprofz", [this](std::string_view query) {
    return profile_capture(profiler_, query);
  });
  set_handler("/healthz", [this] {
    HttpResponse response;
    if (health_ == nullptr) {
      response.body = "ok (no health registry configured)\n";
      return response;
    }
    std::ostringstream os;
    bool all_healthy = true;
    for (const auto& result : health_->evaluate()) {
      all_healthy = all_healthy && result.status.healthy;
      os << (result.status.healthy ? "ok   " : "FAIL ") << result.subsystem;
      if (!result.status.detail.empty()) os << ": " << result.status.detail;
      os << '\n';
    }
    if (!all_healthy) response.status = 503;
    os << (all_healthy ? "healthy\n" : "unhealthy\n");
    response.body = os.str();
    return response;
  });
  set_handler("/tracez", [this] {
    HttpResponse response;
    response.content_type = "application/json";
    if (tracer_ == nullptr && sched_ == nullptr) {
      response.body = "{\"traceEvents\":[]}\n";
      return response;
    }
    // With a scheduler attached the trace carries both processes (spans
    // pid 1, per-worker tracks pid 2) on one aligned time axis.
    response.body = sched_ != nullptr ? combined_trace_json(tracer_, sched_)
                                      : tracer_->chrome_trace_json();
    return response;
  });
  set_handler("/schedz", [this] {
    HttpResponse response;
    if (sched_ == nullptr) {
      response.body = "(no scheduler telemetry configured)\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = sched_->render_json();
    return response;
  });
  set_handler("/logz", [this] {
    HttpResponse response;
    if (log_ring_ == nullptr) {
      response.body = "(no log ring configured)\n";
      return response;
    }
    std::ostringstream os;
    log_ring_->render(os);
    response.body = os.str();
    return response;
  });
}

void TelemetryServer::set_handler(std::string path, HttpHandler handler) {
  std::lock_guard lock(handlers_mutex_);
  query_handlers_.erase(path);
  handlers_[std::move(path)] = std::move(handler);
}

void TelemetryServer::set_query_handler(std::string path,
                                        HttpQueryHandler handler) {
  std::lock_guard lock(handlers_mutex_);
  handlers_.erase(path);
  query_handlers_[std::move(path)] = std::move(handler);
}

HttpResponse TelemetryServer::dispatch(std::string_view method,
                                       std::string_view target) const {
  if (method != "GET") {
    return HttpResponse{405, "text/plain; charset=utf-8",
                        "only GET is supported\n", {}};
  }
  const auto [path, query] = util::split_target(target);
  HttpHandler handler;
  HttpQueryHandler query_handler;
  {
    std::lock_guard lock(handlers_mutex_);
    if (const auto it = handlers_.find(path); it != handlers_.end()) {
      handler = it->second;
    } else if (const auto qit = query_handlers_.find(path);
               qit != query_handlers_.end()) {
      query_handler = qit->second;
    }
  }
  if (query_handler) return query_handler(query);
  if (!handler) {
    return HttpResponse{404, "text/plain; charset=utf-8",
                        "not found; GET / lists endpoints\n", {}};
  }
  return handler();
}

bool TelemetryServer::start() { return server_.start(); }

void TelemetryServer::stop() { server_.stop(); }

}  // namespace ripki::obs
