#include "obs/telemetry.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

namespace ripki::obs {

// --- health ----------------------------------------------------------------

void HealthRegistry::set(std::string_view subsystem, bool healthy,
                         std::string_view detail) {
  std::lock_guard lock(mutex_);
  statuses_[std::string(subsystem)] =
      HealthStatus{healthy, std::string(detail)};
}

void HealthRegistry::register_check(std::string_view subsystem, Check check) {
  std::lock_guard lock(mutex_);
  checks_[std::string(subsystem)] = std::move(check);
}

std::vector<HealthRegistry::Result> HealthRegistry::evaluate() const {
  // Copy under the lock, evaluate callbacks outside it so a check may
  // itself consult health-aware code without deadlocking.
  std::map<std::string, HealthStatus, std::less<>> statuses;
  std::map<std::string, Check, std::less<>> checks;
  {
    std::lock_guard lock(mutex_);
    statuses = statuses_;
    checks = checks_;
  }
  for (const auto& [name, check] : checks) {
    statuses[name] = check ? check() : HealthStatus{false, "null check"};
  }
  std::vector<Result> out;
  out.reserve(statuses.size());
  for (auto& [name, status] : statuses) {
    out.push_back(Result{name, std::move(status)});
  }
  return out;
}

bool HealthRegistry::healthy() const {
  for (const auto& result : evaluate()) {
    if (!result.status.healthy) return false;
  }
  return true;
}

// --- HTTP server -----------------------------------------------------------

namespace {

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

TelemetryServer::TelemetryServer(Options options, EventTracer* tracer,
                                 LogRing* log_ring, HealthRegistry* health)
    : options_(std::move(options)),
      tracer_(tracer),
      log_ring_(log_ring),
      health_(health) {
  register_builtin_routes();
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::register_builtin_routes() {
  set_handler("/", [this] {
    HttpResponse response;
    std::ostringstream os;
    os << "ripki telemetry\n\n";
    std::lock_guard lock(handlers_mutex_);
    for (const auto& [path, handler] : handlers_) os << path << '\n';
    response.body = os.str();
    return response;
  });
  set_handler("/healthz", [this] {
    HttpResponse response;
    if (health_ == nullptr) {
      response.body = "ok (no health registry configured)\n";
      return response;
    }
    std::ostringstream os;
    bool all_healthy = true;
    for (const auto& result : health_->evaluate()) {
      all_healthy = all_healthy && result.status.healthy;
      os << (result.status.healthy ? "ok   " : "FAIL ") << result.subsystem;
      if (!result.status.detail.empty()) os << ": " << result.status.detail;
      os << '\n';
    }
    if (!all_healthy) response.status = 503;
    os << (all_healthy ? "healthy\n" : "unhealthy\n");
    response.body = os.str();
    return response;
  });
  set_handler("/tracez", [this] {
    HttpResponse response;
    response.content_type = "application/json";
    if (tracer_ == nullptr) {
      response.body = "{\"traceEvents\":[]}\n";
      return response;
    }
    response.body = tracer_->chrome_trace_json();
    return response;
  });
  set_handler("/logz", [this] {
    HttpResponse response;
    if (log_ring_ == nullptr) {
      response.body = "(no log ring configured)\n";
      return response;
    }
    std::ostringstream os;
    log_ring_->render(os);
    response.body = os.str();
    return response;
  });
}

void TelemetryServer::set_handler(std::string path, HttpHandler handler) {
  std::lock_guard lock(handlers_mutex_);
  handlers_[std::move(path)] = std::move(handler);
}

HttpResponse TelemetryServer::dispatch(std::string_view method,
                                       std::string_view target) const {
  if (method != "GET") {
    return HttpResponse{405, "text/plain; charset=utf-8",
                        "only GET is supported\n"};
  }
  const auto query = target.find('?');
  const std::string_view path =
      query == std::string_view::npos ? target : target.substr(0, query);
  HttpHandler handler;
  {
    std::lock_guard lock(handlers_mutex_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    return HttpResponse{404, "text/plain; charset=utf-8",
                        "not found; GET / lists endpoints\n"};
  }
  return handler();
}

bool TelemetryServer::start() {
  if (running_.load()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void TelemetryServer::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void TelemetryServer::accept_loop() {
  // poll with a short timeout so stop() never waits on a blocked accept.
  while (!stop_requested_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
  }
}

void TelemetryServer::handle_connection(int fd) {
  // Bound how long a slow client can hold the single accept thread.
  timeval timeout{/*tv_sec=*/2, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP TARGET SP VERSION. Anything unparseable gets
  // a 405 through dispatch's method check.
  std::string_view line(request);
  if (const auto eol = line.find("\r\n"); eol != std::string_view::npos) {
    line = line.substr(0, eol);
  }
  std::string_view method, target = "/";
  if (const auto sp1 = line.find(' '); sp1 != std::string_view::npos) {
    method = line.substr(0, sp1);
    const auto rest = line.substr(sp1 + 1);
    const auto sp2 = rest.find(' ');
    target = sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
  }

  const HttpResponse response = dispatch(method, target);
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::ostringstream os;
  os << "HTTP/1.0 " << response.status << ' ' << status_reason(response.status)
     << "\r\nContent-Type: " << response.content_type
     << "\r\nContent-Length: " << response.body.size()
     << "\r\nConnection: close\r\n\r\n"
     << response.body;
  send_all(fd, os.str());
  ::close(fd);
}

}  // namespace ripki::obs
