// Metrics registry: named counters, gauges, and fixed-bucket histograms
// shared by every pipeline layer.
//
// Hot-path discipline: components look a metric up once (a mutex-guarded
// map access at attach time) and keep the returned handle; every
// subsequent increment/observe is a relaxed atomic, so recording from the
// per-domain measurement loop costs a few nanoseconds and never takes a
// lock. Reads (snapshot/export) aggregate the atomics on demand.
//
// Naming convention: `ripki.<layer>.<name>` — e.g. `ripki.dns.queries`,
// `ripki.rpki.roas_accepted`; trace-span durations live under
// `ripki.trace.<span path>` (see span.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ripki::obs {

class EventTracer;

/// Monotonically increasing event count. `set` exists for publishing a
/// value accumulated elsewhere (e.g. a legacy stats struct).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value (table sizes, queue depths).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges in ascending
/// order; one implicit overflow bucket catches everything beyond the last
/// edge. Observation is a relaxed atomic per bucket plus a CAS-looped sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double max() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket i counts observations in (bounds[i-1], bounds[i]]; the final
  /// entry is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Interpolated percentile, `p` in [0, 1]. Within a bucket the value is
  /// linearly interpolated between the bucket edges (the lower edge of the
  /// first bucket is 0); ranks landing in the overflow bucket return the
  /// maximum observed value.
  double percentile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Default histogram bucket edges for durations in microseconds: a 1-2-5
/// decade series from 1µs to 5s.
std::span<const double> default_duration_bounds_us();

/// Interpolated percentile over fixed-bucket counts — the math behind
/// Histogram::percentile, shared with snapshot deltas where only the
/// bucket counts (not the live atomics) are available. `max` caps the
/// result and is returned for ranks landing in the overflow bucket.
double percentile_from_buckets(std::span<const double> bounds,
                               std::span<const std::uint64_t> buckets,
                               double max, double p);

/// Read-side aggregate of one metric, produced by Registry::collect().
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;  // optional HELP text from Registry::describe
  Kind kind = Kind::kCounter;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  // Histogram aggregates (valid when kind == kHistogram):
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0;
  double max = 0;
  double p50 = 0, p90 = 0, p99 = 0;
};

/// Owner of all metrics. Lookup creates on first use and returns a handle
/// that stays valid for the registry's lifetime; looking the same name up
/// again returns the same object.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first creation; defaults to the µs duration
  /// series.
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = default_duration_bounds_us());

  /// All metrics, sorted by name.
  std::vector<MetricSnapshot> collect() const;

  /// Attaches HELP text emitted by the Prometheus exposition (applies to
  /// whichever metric kind carries `name`).
  void describe(std::string_view name, std::string_view help);

  /// Event tracer consulted by obs::Span (borrowed; nullptr = spans record
  /// histograms only). Install before instrumented threads start.
  void set_tracer(EventTracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  EventTracer* tracer() const {
    return tracer_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
  std::atomic<EventTracer*> tracer_{nullptr};
};

/// Per-interval view: `after - before` for two collect() results from the
/// same registry. Counters and histogram counts/buckets/sums subtract;
/// gauges keep their `after` value (they are point-in-time); histogram
/// percentiles are recomputed from the delta buckets (capped at the
/// cumulative max, the best bound available without per-interval state).
/// Metrics absent from `before` pass through unchanged.
std::vector<MetricSnapshot> delta_snapshots(
    const std::vector<MetricSnapshot>& before,
    const std::vector<MetricSnapshot>& after);

}  // namespace ripki::obs
