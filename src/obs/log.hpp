// Structured logging: severity levels, key=value fields, and a pluggable
// sink (stderr by default; tests install a capturing sink).
//
// The RIPKI_LOG_* macros are compile-time filterable: defining
// RIPKI_LOG_MIN_LEVEL (0=trace .. 4=error, 5=off) removes lower-severity
// call sites entirely, so a release build can strip trace/debug logging
// from hot paths. Runtime filtering via Logger::set_level applies on top.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ripki::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* to_string(LogLevel level);

/// One key=value attachment. The constructors stringify the common value
/// types so call sites stay terse.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  LogField(std::string_view k, bool v) : key(k), value(v ? "true" : "false") {}
  LogField(std::string_view k, double v);
  template <typename T>
    requires std::is_integral_v<T> && (!std::is_same_v<T, bool>)
  LogField(std::string_view k, T v) : key(k), value(std::to_string(v)) {}
};

struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;  // the emitting layer, e.g. "pipeline", "dns"
  std::string message;
  std::vector<LogField> fields;
};

using LogSink = std::function<void(const LogRecord&)>;

class LogRing;

class Logger {
 public:
  /// Process-wide logger used by the RIPKI_LOG_* macros.
  static Logger& global();

  Logger() = default;

  void set_level(LogLevel level) { level_.store(static_cast<int>(level)); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load()); }
  /// True when a record of `level` would go anywhere: past the runtime
  /// threshold to the sink, or — regardless of verbosity — into an
  /// attached flight-recorder ring.
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load() ||
           ring_.load(std::memory_order_relaxed) != nullptr;
  }

  /// Installs a sink; passing nullptr restores the default stderr sink.
  void set_sink(LogSink sink);

  /// Attaches a flight recorder (borrowed; nullptr detaches). The ring
  /// receives every record reaching log() even when the runtime level
  /// filters it from the sink.
  void attach_ring(LogRing* ring) {
    ring_.store(ring, std::memory_order_release);
  }
  LogRing* ring() const { return ring_.load(std::memory_order_acquire); }

  void log(LogLevel level, std::string_view component, std::string_view message,
           std::vector<LogField> fields = {});

  /// "level component: message key=value ..." — the stderr line format;
  /// values containing spaces are quoted.
  static std::string format(const LogRecord& record);

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<LogRing*> ring_{nullptr};
  std::mutex sink_mutex_;
  LogSink sink_;  // empty => stderr
};

}  // namespace ripki::obs

/// Call sites below RIPKI_LOG_MIN_LEVEL compile to nothing.
#ifndef RIPKI_LOG_MIN_LEVEL
#define RIPKI_LOG_MIN_LEVEL 0
#endif

#define RIPKI_LOG_AT(level, level_int, component, message, ...)               \
  do {                                                                        \
    if constexpr ((level_int) >= RIPKI_LOG_MIN_LEVEL) {                       \
      auto& ripki_logger = ::ripki::obs::Logger::global();                    \
      if (ripki_logger.enabled(level)) {                                      \
        ripki_logger.log(level, component, message,                           \
                         std::vector<::ripki::obs::LogField>{__VA_ARGS__});   \
      }                                                                       \
    }                                                                         \
  } while (0)

#define RIPKI_LOG_TRACE(component, message, ...) \
  RIPKI_LOG_AT(::ripki::obs::LogLevel::kTrace, 0, component, message, ##__VA_ARGS__)
#define RIPKI_LOG_DEBUG(component, message, ...) \
  RIPKI_LOG_AT(::ripki::obs::LogLevel::kDebug, 1, component, message, ##__VA_ARGS__)
#define RIPKI_LOG_INFO(component, message, ...) \
  RIPKI_LOG_AT(::ripki::obs::LogLevel::kInfo, 2, component, message, ##__VA_ARGS__)
#define RIPKI_LOG_WARN(component, message, ...) \
  RIPKI_LOG_AT(::ripki::obs::LogLevel::kWarn, 3, component, message, ##__VA_ARGS__)
#define RIPKI_LOG_ERROR(component, message, ...) \
  RIPKI_LOG_AT(::ripki::obs::LogLevel::kError, 4, component, message, ##__VA_ARGS__)
