#include "obs/profiler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

namespace ripki::obs {

namespace {

/// The armed profiler (SIGPROF is process-global) and a handler-in-flight
/// count. The handler increments the count BEFORE loading the pointer, so
/// stop() can clear the pointer and then spin until the count drains —
/// after that no handler can still be touching the instance.
std::atomic<SamplingProfiler*> g_active{nullptr};
std::atomic<std::uint32_t> g_in_handler{0};

/// Stack frames that belong to the capture machinery itself, present at
/// the top of every raw backtrace: capture_from_signal (the backtrace
/// caller), signal_handler, and the kernel signal trampoline. Both
/// functions are noinline so this count is exact.
constexpr int kCaptureFrames = 3;

}  // namespace

SamplingProfiler::SamplingProfiler(Options options)
    : options_(options), slots_(new Slot[std::max<std::size_t>(1, options.capacity)]) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.hz == 0) options_.hz = 1;
}

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::signal_handler(int) {
  // Increment first: stop() clears g_active and then waits for this
  // counter, so a non-null load here guarantees the instance stays alive
  // for the duration of the capture.
  g_in_handler.fetch_add(1, std::memory_order_seq_cst);
  SamplingProfiler* profiler = g_active.load(std::memory_order_seq_cst);
  if (profiler != nullptr) profiler->capture_from_signal();
  g_in_handler.fetch_sub(1, std::memory_order_seq_cst);
}

__attribute__((noinline)) void SamplingProfiler::capture_from_signal() {
  const std::uint64_t index =
      claimed_.fetch_add(1, std::memory_order_relaxed);
  if (index >= options_.capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_[index];
  void* raw[kMaxFrames + kCaptureFrames];
  const int n = ::backtrace(raw, kMaxFrames + kCaptureFrames);
  const int usable = n > kCaptureFrames ? n - kCaptureFrames : 0;
  if (usable == 0) {
    // Unwalkable stack: publish a one-frame sentinel so the claim is
    // still accounted for in exports.
    slot.frames[0] = nullptr;
    slot.depth.store(1, std::memory_order_release);
    return;
  }
  std::memcpy(slot.frames, raw + kCaptureFrames,
              static_cast<std::size_t>(usable) * sizeof(void*));
  slot.depth.store(static_cast<std::uint32_t>(usable),
                   std::memory_order_release);
}

bool SamplingProfiler::start() {
  if (running()) return true;
  SamplingProfiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_seq_cst)) {
    return false;
  }

  // Force ::backtrace's lazy libgcc initialisation (which may allocate)
  // outside signal context, before the first SIGPROF can arrive.
  void* warmup[4];
  ::backtrace(warmup, 4);

  struct sigaction action {};
  action.sa_handler = &SamplingProfiler::signal_handler;
  action.sa_flags = SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, nullptr) != 0) {
    g_active.store(nullptr, std::memory_order_seq_cst);
    return false;
  }

  itimerval timer{};
  const long interval_us = std::max(1L, 1'000'000L / options_.hz);
  timer.it_interval.tv_sec = interval_us / 1'000'000;
  timer.it_interval.tv_usec = interval_us % 1'000'000;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    ::signal(SIGPROF, SIG_IGN);
    g_active.store(nullptr, std::memory_order_seq_cst);
    return false;
  }
  running_.store(true, std::memory_order_release);
  return true;
}

void SamplingProfiler::stop() {
  if (!running()) return;
  itimerval disarm{};
  ::setitimer(ITIMER_PROF, &disarm, nullptr);
  // A SIGPROF already generated keeps its delivery; ignore rather than
  // restore SIG_DFL (whose action would terminate the process).
  ::signal(SIGPROF, SIG_IGN);
  g_active.store(nullptr, std::memory_order_seq_cst);
  while (g_in_handler.load(std::memory_order_seq_cst) != 0) {
    // Spin: the handler only runs for the duration of one backtrace.
  }
  running_.store(false, std::memory_order_release);
}

std::uint64_t SamplingProfiler::samples() const {
  const std::uint64_t claimed = claimed_.load(std::memory_order_relaxed);
  return std::min<std::uint64_t>(claimed, options_.capacity);
}

std::uint64_t SamplingProfiler::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::uint64_t SamplingProfiler::sequence() const {
  return claimed_.load(std::memory_order_relaxed);
}

void SamplingProfiler::clear() {
  if (running()) return;
  const std::uint64_t filled = samples();
  for (std::uint64_t i = 0; i < filled; ++i) {
    slots_[i].depth.store(0, std::memory_order_relaxed);
  }
  claimed_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::string symbolize_frame(const void* address) {
  // The return address points one past the call; step back one byte so a
  // call that ends a function does not symbolise as its successor.
  const void* site =
      static_cast<const char*>(address) == nullptr
          ? address
          : static_cast<const void*>(static_cast<const char*>(address) - 1);
  Dl_info info{};
  if (address != nullptr && ::dladdr(site, &info) != 0) {
    if (info.dli_sname != nullptr) {
      int status = 0;
      char* demangled =
          abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      if (status == 0 && demangled != nullptr) {
        std::string out(demangled);
        std::free(demangled);
        return out;
      }
      if (demangled != nullptr) std::free(demangled);
      return info.dli_sname;
    }
    if (info.dli_fname != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      const auto offset = static_cast<const char*>(address) -
                          static_cast<const char*>(info.dli_fbase);
      char buf[256];
      std::snprintf(buf, sizeof buf, "%s+0x%llx",
                    base != nullptr ? base + 1 : info.dli_fname,
                    static_cast<unsigned long long>(offset));
      return buf;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                reinterpret_cast<unsigned long long>(address));
  return buf;
}

SamplingProfiler::Profile SamplingProfiler::profile(std::uint64_t from) const {
  Profile out;
  out.hz = options_.hz;
  out.dropped = dropped();
  const std::uint64_t filled = samples();

  // Aggregate raw stacks first so each distinct stack symbolises once.
  struct FrameKey {
    const void* const* frames;
    std::uint32_t depth;
    bool operator<(const FrameKey& other) const {
      if (depth != other.depth) return depth < other.depth;
      return std::memcmp(frames, other.frames, depth * sizeof(void*)) < 0;
    }
  };
  std::map<FrameKey, std::uint64_t> counts;
  for (std::uint64_t i = from; i < filled; ++i) {
    const std::uint32_t depth = slots_[i].depth.load(std::memory_order_acquire);
    if (depth == 0) continue;  // claimed but not yet published
    ++counts[FrameKey{slots_[i].frames, depth}];
    ++out.samples;
  }

  std::map<const void*, std::string> symbols;
  const auto symbol_for = [&](const void* address) -> const std::string& {
    auto it = symbols.find(address);
    if (it == symbols.end()) {
      it = symbols.emplace(address, symbolize_frame(address)).first;
    }
    return it->second;
  };

  out.stacks.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    Stack stack;
    stack.count = count;
    stack.frames.reserve(key.depth);
    // backtrace yields innermost-first; stacks read root-first.
    for (std::uint32_t f = key.depth; f > 0; --f) {
      stack.frames.push_back(symbol_for(key.frames[f - 1]));
    }
    out.stacks.push_back(std::move(stack));
  }
  std::sort(out.stacks.begin(), out.stacks.end(),
            [](const Stack& a, const Stack& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.frames < b.frames;
            });
  return out;
}

std::string SamplingProfiler::folded(std::uint64_t from) const {
  const Profile p = profile(from);
  std::string out;
  for (const auto& stack : p.stacks) {
    std::string line;
    for (std::size_t i = 0; i < stack.frames.size(); ++i) {
      if (i > 0) line += ';';
      // The folded format reserves ';' (separator) and ' ' (count).
      for (const char c : stack.frames[i]) {
        line += (c == ';' || c == ' ') ? '_' : c;
      }
    }
    line += ' ';
    line += std::to_string(stack.count);
    line += '\n';
    out += line;
  }
  return out;
}

std::string SamplingProfiler::json(std::uint64_t from) const {
  const Profile p = profile(from);
  std::ostringstream os;
  os << "{\"profile\":{\"hz\":" << p.hz << ",\"samples\":" << p.samples
     << ",\"dropped\":" << p.dropped << ",\"stacks\":[";
  bool first_stack = true;
  for (const auto& stack : p.stacks) {
    if (!first_stack) os << ',';
    first_stack = false;
    os << "{\"count\":" << stack.count << ",\"frames\":[";
    for (std::size_t i = 0; i < stack.frames.size(); ++i) {
      if (i > 0) os << ',';
      os << '"';
      for (const char c : stack.frames[i]) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
      }
      os << '"';
    }
    os << "]}";
  }
  os << "]}}";
  return os.str();
}

}  // namespace ripki::obs
