#include "obs/log.hpp"

#include <cstdio>

#include "obs/logring.hpp"
#include "obs/request_context.hpp"

namespace ripki::obs {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogField::LogField(std::string_view k, double v) : key(k) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  value = buf;
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(LogSink sink) {
  std::lock_guard lock(sink_mutex_);
  sink_ = std::move(sink);
}

std::string Logger::format(const LogRecord& record) {
  std::string out = to_string(record.level);
  out += ' ';
  out += record.component;
  out += ": ";
  out += record.message;
  for (const auto& field : record.fields) {
    out += ' ';
    out += field.key;
    out += '=';
    if (field.value.find(' ') != std::string::npos) {
      out += '"';
      out += field.value;
      out += '"';
    } else {
      out += field.value;
    }
  }
  return out;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message, std::vector<LogField> fields) {
  LogRing* ring = ring_.load(std::memory_order_acquire);
  const bool passes_level = static_cast<int>(level) >= level_.load();
  if (ring == nullptr && !passes_level) return;
  LogRecord record;
  record.level = level;
  record.component = std::string(component);
  record.message = std::string(message);
  record.fields = std::move(fields);
  // Records emitted while a request is live carry its id, matching the
  // X-Ripki-Request-Id header the client saw.
  if (const RequestContext* request = RequestContext::current()) {
    record.fields.emplace_back("request_id", request->id_hex());
  }

  if (ring != nullptr) ring->append(record);
  if (!passes_level) return;

  std::lock_guard lock(sink_mutex_);
  if (sink_) {
    sink_(record);
  } else {
    const std::string line = format(record);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace ripki::obs
