// Dataset export: the paper's "All data will be made available."
//
// Runs the pipeline and writes three CSV files (per-domain records,
// per-pair validation outcomes, pipeline counters) for downstream
// analysis/plotting.
//
//   build/examples/export_dataset [output_dir] [domain_count]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/export.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace ripki;

  const std::string out_dir = argc > 1 ? argv[1] : ".";
  web::EcosystemConfig config;
  config.domain_count = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000;

  std::cerr << "export_dataset: generating ecosystem and running pipeline...\n";
  const auto ecosystem = web::Ecosystem::generate(config);
  core::MeasurementPipeline pipeline(*ecosystem, core::PipelineConfig{});
  const core::Dataset dataset = pipeline.run();

  const auto write = [&](const std::string& name, auto&& writer) {
    const std::string path = out_dir + "/" + name;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot open " << path << " for writing\n";
      std::exit(1);
    }
    writer(dataset, os);
    std::cout << "wrote " << path << "\n";
  };

  write("ripki_domains.csv",
        [](const core::Dataset& d, std::ostream& os) { export_domains_csv(d, os); });
  write("ripki_pairs.csv",
        [](const core::Dataset& d, std::ostream& os) { export_pairs_csv(d, os); });
  write("ripki_counters.csv", [](const core::Dataset& d, std::ostream& os) {
    export_counters_csv(d, os);
  });
  return 0;
}
