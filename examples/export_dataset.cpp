// Dataset export: the paper's "All data will be made available."
//
// Runs the pipeline and writes three CSV files (per-domain records,
// per-pair validation outcomes, pipeline counters) for downstream
// analysis/plotting.
//
//   build/examples/export_dataset [output_dir] [domain_count]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/export.hpp"
#include "core/pipeline.hpp"
#include "obs/span.hpp"

int main(int argc, char** argv) {
  using namespace ripki;

  const std::string out_dir = argc > 1 ? argv[1] : ".";
  web::EcosystemConfig config;
  config.domain_count = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000;

  std::cerr << "export_dataset: generating ecosystem and running pipeline...\n";
  const auto ecosystem = web::Ecosystem::generate(config);
  obs::Registry registry;
  core::PipelineConfig pipeline_config;
  pipeline_config.registry = &registry;
  core::MeasurementPipeline pipeline(*ecosystem, pipeline_config);
  const core::Dataset dataset = pipeline.run();
  obs::render_stage_report(registry, std::cerr);

  const auto write = [&](const std::string& name, auto&& writer) {
    const std::string path = out_dir + "/" + name;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot open " << path << " for writing\n";
      std::exit(1);
    }
    writer(dataset, os);
    std::cout << "wrote " << path << "\n";
  };

  write("ripki_domains.csv",
        [](const core::Dataset& d, std::ostream& os) { export_domains_csv(d, os); });
  write("ripki_pairs.csv",
        [](const core::Dataset& d, std::ostream& os) { export_pairs_csv(d, os); });
  write("ripki_counters.csv", [](const core::Dataset& d, std::ostream& os) {
    export_counters_csv(d, os);
  });

  // Pipeline metrics alongside the dataset: machine-readable timing and
  // counters for this run, in both serialisation formats.
  const auto write_metrics = [&](const std::string& name, auto&& writer) {
    const std::string path = out_dir + "/" + name;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot open " << path << " for writing\n";
      std::exit(1);
    }
    writer(registry, os);
    std::cout << "wrote " << path << "\n";
  };
  write_metrics("ripki_metrics.json",
                [](const obs::Registry& r, std::ostream& os) {
                  core::export_metrics_json(r, os);
                });
  write_metrics("ripki_metrics.prom",
                [](const obs::Registry& r, std::ostream& os) {
                  core::export_metrics_prometheus(r, os);
                });
  return 0;
}
