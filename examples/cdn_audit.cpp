// CDN audit: the tool the paper's §5 asks for — "How can a content owner
// easily verify that his content is reliably and securely delivered?"
//
// For a handful of domains from the ecosystem (or a rank given on the
// command line), the audit resolves both name variants, maps every address
// to its covering prefix-AS pairs, annotates RFC 6811 state, flags CDN
// involvement, and lists exactly which (prefix, AS) pairs still need ROAs.
//
//   build/examples/cdn_audit [domain_index...]
#include <cstdlib>
#include <iostream>

#include "core/classifiers.hpp"
#include "core/pipeline.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

void audit_domain(const ripki::core::DomainTable::RecordView& record,
                  const ripki::core::ChainCdnClassifier& chain,
                  const ripki::web::Ecosystem& ecosystem) {
  using namespace ripki;
  std::cout << "== Audit: " << record.name << " (rank "
            << util::format_count(record.rank) << ") ==\n";

  if (record.excluded_dns) {
    std::cout << "  DNS is broken for both variants (special-purpose answers); "
                 "nothing to audit.\n\n";
    return;
  }

  const auto describe = [&](const char* label,
                            const core::DomainTable::VariantView& v) {
    std::cout << label << ": ";
    if (!v.resolved) {
      std::cout << "did not resolve\n";
      return;
    }
    std::cout << v.address_count << " address(es), " << v.pairs.size()
              << " prefix-AS pair(s), " << static_cast<int>(v.cname_hops)
              << " CNAME hop(s)";
    if (chain.is_cdn(v)) std::cout << "  [CDN-served]";
    if (!v.terminal_cname.empty()) std::cout << "  via " << v.terminal_cname;
    std::cout << "\n";

    util::TextTable table({"prefix", "origin AS", "holder", "RPKI state"});
    std::size_t missing = 0;
    for (const auto& pair : v.pairs) {
      const auto* as_record = ecosystem.registry().find(pair.origin);
      table.add_row({pair.prefix.to_string(), pair.origin.to_string(),
                     as_record != nullptr ? as_record->holder : "(unknown)",
                     rpki::to_string(pair.validity)});
      if (pair.validity == rpki::OriginValidity::kNotFound) ++missing;
    }
    table.print(std::cout);

    if (missing == 0) {
      std::cout << "  fully RPKI-covered; no action needed.\n";
    } else {
      std::cout << "  ACTION: " << missing << " pair(s) lack ROAs. Each prefix "
                   "holder must create a ROA authorizing the origin AS above "
                   "(and every other legitimate origin) before routers can "
                   "reject hijacks of this footprint.\n";
    }
  };

  describe("  www   ", record.www);
  describe("  apex  ", record.apex);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ripki;

  web::EcosystemConfig config;
  config.domain_count = 20'000;
  std::cerr << "cdn_audit: generating ecosystem...\n";
  const auto ecosystem = web::Ecosystem::generate(config);

  core::PipelineConfig pipeline_config;
  pipeline_config.max_domains = config.domain_count;
  core::MeasurementPipeline pipeline(*ecosystem, pipeline_config);
  std::cerr << "cdn_audit: running measurement pipeline...\n";
  const core::Dataset dataset = pipeline.run();

  const core::ChainCdnClassifier chain;

  std::vector<std::size_t> targets;
  for (int i = 1; i < argc; ++i) {
    targets.push_back(std::strtoull(argv[i], nullptr, 10) % dataset.domains.size());
  }
  if (targets.empty()) {
    // Default selection: one CDN-served top domain, one partially covered
    // domain, one fully uncovered domain.
    bool want_cdn = true;
    bool want_partial = true;
    bool want_uncovered = true;
    for (std::size_t i = 0; i < dataset.domains.size() && targets.size() < 3; ++i) {
      const auto record = dataset.domains[i];
      if (record.primary().pairs.empty()) continue;
      const double coverage = record.primary().coverage();
      if (want_cdn && chain.is_cdn(record)) {
        targets.push_back(i);
        want_cdn = false;
      } else if (want_partial && coverage > 0.0 && coverage < 1.0) {
        targets.push_back(i);
        want_partial = false;
      } else if (want_uncovered && !chain.is_cdn(record) && coverage == 0.0 &&
                 i > 100) {
        targets.push_back(i);
        want_uncovered = false;
      }
    }
  }

  for (const std::size_t index : targets) {
    audit_domain(dataset.domains[index], chain, *ecosystem);
  }
  return 0;
}
