// ROA wizard: generates and signs the missing ROAs for one domain's
// hosting footprint, then re-validates — and demonstrates the §5.2
// deployment pitfall: "as soon as at least one ROA for an IP prefix
// exists, ALL valid origin ASes for this IP prefix need to be assigned in
// the RPKI before route updates are processed."
//
// Scenario: a website's prefix is legitimately originated by two ASes
// (the owner plus a DoS-mitigation backup). The wizard first issues a ROA
// for only the primary origin — the backup's announcement flips from
// not-found to INVALID (worse than before, for that path). Issuing the
// second ROA repairs it. This is also why operators fear RPKI reveals
// business relations: both ROAs are now public.
#include <iostream>

#include "rpki/origin_validation.hpp"
#include "rpki/repository.hpp"
#include "rpki/validator.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

using namespace ripki;

void show_states(const char* stage, const rpki::VrpIndex& index,
                 const net::Prefix& prefix, net::Asn primary, net::Asn backup) {
  util::TextTable table({"announcement", "origin", "RFC 6811 state"});
  table.add_row({prefix.to_string(), primary.to_string(),
                 rpki::to_string(index.validate(prefix, primary))});
  table.add_row({prefix.to_string(), backup.to_string(),
                 rpki::to_string(index.validate(prefix, backup))});
  std::cout << stage << "\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  const rpki::Timestamp now = rpki::kDefaultNow;
  util::Prng prng(7);

  const auto prefix = net::Prefix::parse("62.210.16.0/20").value();
  const net::Asn primary(64496);  // the website's hoster
  const net::Asn backup(64497);   // DoS-mitigation provider announcing as backup

  auto anchor = rpki::make_trust_anchor(
      "RIPE", rpki::ResourceSet({net::Prefix::parse("62.0.0.0/8").value()}),
      rpki::ValidityWindow{now - 365 * rpki::kSecondsPerDay,
                           now + 365 * rpki::kSecondsPerDay},
      prng);

  std::cout << "Website footprint: " << prefix.to_string()
            << ", legitimately originated by " << primary.to_string()
            << " (hoster) and " << backup.to_string() << " (DDoS backup)\n\n";

  const rpki::RepositoryValidator validator(now);

  // --- Stage 0: no ROAs at all.
  {
    rpki::RepositoryBuilder builder(anchor, now, prng);
    (void)builder.add_ca("Website Hosting Ltd", rpki::ResourceSet({prefix}));
    rpki::ValidationReport report;
    validator.validate_into(builder.build(), report);
    show_states("Stage 0 - no ROAs published (unprotected but unbroken):",
                rpki::VrpIndex(report.vrps), prefix, primary, backup);
  }

  // --- Stage 1: the wizard issues a ROA for the primary origin only.
  {
    rpki::RepositoryBuilder builder(anchor, now, prng);
    const auto ca = builder.add_ca("Website Hosting Ltd",
                                   rpki::ResourceSet({prefix}));
    rpki::RoaContent roa;
    roa.asn = primary;
    roa.prefixes = {rpki::RoaPrefix{prefix, 20}};
    builder.add_roa(ca, roa);
    rpki::ValidationReport report;
    validator.validate_into(builder.build(), report);
    show_states(
        "Stage 1 - ROA for the primary origin only (the Section 5.2 pitfall: "
        "the backup path is now INVALID and RPKI-validating routers drop it):",
        rpki::VrpIndex(report.vrps), prefix, primary, backup);
  }

  // --- Stage 2: ROAs for every legitimate origin.
  {
    rpki::RepositoryBuilder builder(anchor, now, prng);
    const auto ca = builder.add_ca("Website Hosting Ltd",
                                   rpki::ResourceSet({prefix}));
    rpki::RoaContent roa_primary;
    roa_primary.asn = primary;
    roa_primary.prefixes = {rpki::RoaPrefix{prefix, 20}};
    builder.add_roa(ca, roa_primary);
    rpki::RoaContent roa_backup;
    roa_backup.asn = backup;
    roa_backup.prefixes = {rpki::RoaPrefix{prefix, 20}};
    builder.add_roa(ca, roa_backup);
    rpki::ValidationReport report;
    validator.validate_into(builder.build(), report);
    show_states("Stage 2 - ROAs for BOTH origins (fully protected):",
                rpki::VrpIndex(report.vrps), prefix, primary, backup);

    std::cout << "Note: the repository now publicly documents the business\n"
                 "relation between "
              << primary.to_string() << " and " << backup.to_string()
              << " IN ADVANCE of any backup event - the §5.2 disclosure\n"
                 "concern operators raised with the authors.\n";
  }
  return 0;
}
