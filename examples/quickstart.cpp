// Quickstart: generate a small synthetic web ecosystem, run the paper's
// four-step measurement pipeline, and print the headline numbers.
//
//   build/examples/quickstart [domain_count]
#include <cstdlib>
#include <iostream>

#include "core/classifiers.hpp"
#include "core/pipeline.hpp"
#include "core/reports.hpp"
#include "obs/span.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ripki;

  web::EcosystemConfig config;
  config.domain_count = 20'000;
  if (argc > 1) config.domain_count = std::strtoull(argv[1], nullptr, 10);

  std::cout << "Generating ecosystem (" << util::format_count(config.domain_count)
            << " domains over " << util::format_count(config.rank_space)
            << " ranks, seed " << config.seed << ")...\n";
  const auto ecosystem = web::Ecosystem::generate(config);
  std::cout << "  ASes: " << ecosystem->registry().size()
            << ", prefixes: " << ecosystem->prefixes().size()
            << ", BGP table: " << ecosystem->rib().prefix_count() << " prefixes / "
            << ecosystem->rib().entry_count() << " entries\n";

  obs::Registry registry;
  core::PipelineConfig pipeline_config;
  pipeline_config.registry = &registry;
  core::MeasurementPipeline pipeline(*ecosystem, pipeline_config);
  std::cout << "Running measurement pipeline...\n";
  const core::Dataset dataset = pipeline.run();

  const auto& report = pipeline.validation_report();
  std::cout << "  RPKI: " << report.roas_accepted << " ROAs accepted ("
            << report.vrps.size() << " VRPs), " << report.roas_rejected
            << " rejected\n";
  std::cout << "  DNS queries: " << util::format_count(dataset.counters.dns_queries)
            << ", addresses www/apex: "
            << util::format_count(dataset.counters.addresses_www) << "/"
            << util::format_count(dataset.counters.addresses_apex)
            << ", prefix-AS pairs: "
            << util::format_count(dataset.counters.pairs_www) << "/"
            << util::format_count(dataset.counters.pairs_apex) << "\n";
  std::cout << "  excluded DNS answers: " << dataset.counters.domains_excluded_dns
            << " domains, special-purpose: "
            << dataset.counters.special_purpose_excluded
            << ", unrouted: " << dataset.counters.unrouted_addresses << "\n";

  const auto summary = core::reports::figure4_summary(dataset);
  std::cout << "\nRPKI protection of websites (paper §4.1):\n";
  std::cout << "  mean coverage        " << util::format_percent(summary.mean_coverage)
            << "  (paper: ~6% of web server prefixes)\n";
  std::cout << "  top-100k coverage    "
            << util::format_percent(summary.top_100k_coverage)
            << "  (paper: ~4.0%)\n";
  std::cout << "  last-100k coverage   "
            << util::format_percent(summary.last_100k_coverage)
            << "  (paper: ~5.5%)\n";
  std::cout << "  invalid              "
            << util::format_percent(summary.mean_invalid, 3)
            << "  (paper: ~0.09%)\n";

  const core::ChainCdnClassifier chain;
  const auto fig6 = core::reports::figure6_summary(dataset, chain);
  std::cout << "\nCDN vs non-CDN RPKI deployment (paper §4.3):\n";
  std::cout << "  CDN-classified mean coverage  "
            << util::format_percent(fig6.cdn_mean_coverage) << "\n";
  std::cout << "  unconditioned web             "
            << util::format_percent(fig6.all_mean_coverage) << "\n";

  std::cout << "\nStage timing breakdown:\n";
  obs::render_stage_report(registry, std::cout);

  const core::CdnAsDirectory directory(ecosystem->registry());
  std::cout << "\nCDN AS census (paper §4.2): " << directory.total_cdn_ases()
            << " CDN ASes (paper: 199)\n";
  for (const auto& entry : directory.census(report.vrps)) {
    if (entry.rpki_entries.empty()) continue;
    std::cout << "  " << entry.cdn << ": " << entry.rpki_entries.size()
              << " RPKI entries across " << entry.roa_origin_ases.size()
              << " origin ASes\n";
  }
  return 0;
}
