// A complete relying party, end to end — the validator-side stack the
// paper's methodology step 4 depends on (what Routinator / the RIPE
// validator / RTRlib's cachectl do in production):
//
//   1. bootstrap trust from the five RIR TAL files (RFC 7730),
//   2. mirror every repository over RRDP (RFC 8182),
//   3. cryptographically validate the fetched objects (certificates,
//      CRLs, manifests, ROAs) into a VRP set,
//   4. serve the VRPs to routers over the RTR protocol (RFC 8210 v1,
//      with automatic downgrade for v0-only routers).
//
//   build/examples/relying_party
#include <iostream>

#include "rpki/rrdp.hpp"
#include "rpki/validator.hpp"
#include "rtr/cache.hpp"
#include "rtr/client.hpp"
#include "util/strings.hpp"
#include "web/ecosystem.hpp"

int main() {
  using namespace ripki;

  // A small world whose five RIRs publish RPKI repositories.
  web::EcosystemConfig config;
  config.domain_count = 1'000;
  std::cerr << "relying_party: generating world...\n";
  const auto ecosystem = web::Ecosystem::generate(config);

  // 1. TAL bootstrap: the RP is configured with locator files only.
  const auto tals = ecosystem->tals();
  std::cout << "Configured trust anchor locators:\n";
  for (const auto& tal : tals) {
    std::cout << "  " << tal.uri << "\n";
  }

  // 2. RRDP mirroring of each repository.
  std::vector<rpki::Repository> fetched;
  std::uint64_t objects = 0;
  for (const auto& repo : ecosystem->repositories()) {
    rpki::RrdpServer server("session-" + rpki::repository_base_uri(repo), repo);
    rpki::RrdpClient client;
    if (auto r = client.sync(server); !r.ok()) {
      std::cerr << "RRDP sync failed: " << r.error().message << "\n";
      return 1;
    }
    objects += client.objects().size();
    auto assembled = client.assemble();
    if (!assembled.ok()) {
      std::cerr << "assembly failed: " << assembled.error().message << "\n";
      return 1;
    }
    fetched.push_back(std::move(assembled).value());
  }
  std::cout << "\nRRDP: mirrored " << fetched.size() << " repositories ("
            << objects << " objects)\n";

  // 3. Validation (with TAL matching).
  const rpki::RepositoryValidator validator(config.now);
  const auto report = validator.validate(fetched, tals);
  std::cout << "Validation: " << report.cas_accepted << " CAs, "
            << report.roas_accepted << " ROAs accepted ("
            << report.roas_rejected << " rejected) -> " << report.vrps.size()
            << " VRPs\n";
  for (const auto& rejected : report.rejected) {
    std::cout << "  rejected: " << rejected.description << " ["
              << rpki::to_string(rejected.reason) << "]\n";
  }

  // 4. RTR service: one v1 router, one legacy v0 router.
  rtr::CacheServer cache(0xBEEF, report.vrps);
  rtr::RouterClient modern_router;               // prefers v1
  rtr::RouterClient legacy_router(rtr::kVersion0);
  if (!modern_router.sync(cache).ok() || !legacy_router.sync(cache).ok()) {
    std::cerr << "RTR sync failed\n";
    return 1;
  }
  std::cout << "\nRTR service (session " << cache.session_id() << ", serial "
            << cache.serial() << "):\n";
  std::cout << "  modern router: protocol v"
            << static_cast<int>(modern_router.version()) << ", "
            << modern_router.vrps().size() << " VRPs, refresh interval "
            << modern_router.refresh_interval() << "s\n";
  std::cout << "  legacy router: protocol v"
            << static_cast<int>(legacy_router.version()) << ", "
            << legacy_router.vrps().size() << " VRPs\n";

  // Spot-check: the routers' tables agree with the validator.
  const bool consistent = modern_router.vrps().size() == report.vrps.size() &&
                          legacy_router.vrps().size() == report.vrps.size();
  std::cout << "\n"
            << (consistent ? "Router tables are consistent with the validated set."
                           : "INCONSISTENCY between validator and routers!")
            << "\n";
  return consistent ? 0 : 1;
}
