// Hijack demo: the paper's §2.3 attacker model, end to end.
//
// A video site announces its prefix legitimately and registers a ROA.
// A hijacker then announces a more-specific of the site's prefix (the
// Pakistan-Telecom-vs-YouTube pattern). Two routers receive both updates:
//
//   * router A performs no origin validation — the bogus more-specific
//     wins by longest-prefix match and traffic is blackholed;
//   * router B syncs the validated ROA set through a real RTR session
//     (RFC 6810 cache + client) and drops the invalid announcement.
#include <iostream>

#include "bgp/speaker.hpp"
#include "rpki/repository.hpp"
#include "rpki/validator.hpp"
#include "rtr/cache.hpp"
#include "rtr/client.hpp"
#include "util/prng.hpp"

int main() {
  using namespace ripki;

  const rpki::Timestamp now = rpki::kDefaultNow;
  util::Prng prng(2015);

  // --- The RPKI side: the RIR delegates space to the video site, which
  // --- registers a ROA for its prefix.
  const auto site_prefix = net::Prefix::parse("208.65.152.0/22").value();
  const net::Asn site_asn(36561);    // the content provider
  const net::Asn hijacker_asn(17557);  // the hijacker's AS

  auto anchor = rpki::make_trust_anchor(
      "ARIN", rpki::ResourceSet({net::Prefix::parse("208.0.0.0/8").value()}),
      rpki::ValidityWindow{now - 365 * rpki::kSecondsPerDay,
                           now + 365 * rpki::kSecondsPerDay},
      prng);
  rpki::RepositoryBuilder builder(anchor, now, prng);
  const auto ca = builder.add_ca("VideoSite Inc", rpki::ResourceSet({site_prefix}));
  rpki::RoaContent roa;
  roa.asn = site_asn;
  roa.prefixes = {rpki::RoaPrefix{site_prefix, 22}};  // maxLength 22: /24s NOT authorized
  builder.add_roa(ca, roa);
  const rpki::Repository repo = builder.build();

  std::cout << "RPKI repository published by " << anchor.name << ":\n";
  std::cout << "  ROA: " << site_prefix.to_string() << "-22 => "
            << site_asn.to_string() << "\n\n";

  // --- Relying party: validate the repository, serve routers over RTR.
  const rpki::RepositoryValidator validator(now);
  rpki::ValidationReport report;
  validator.validate_into(repo, report);
  std::cout << "Relying party validated " << report.roas_accepted << " ROA ("
            << report.vrps.size() << " VRP)\n";

  rtr::CacheServer cache(0x1057, report.vrps);
  rtr::RouterClient rtr_client;
  if (auto r = rtr_client.sync(cache); !r.ok()) {
    std::cerr << "RTR sync failed: " << r.error().message << "\n";
    return 1;
  }
  std::cout << "Router B synced " << rtr_client.vrps().size()
            << " VRP via RTR (serial " << rtr_client.serial() << ")\n\n";
  const rpki::VrpIndex index = rtr_client.build_index();

  // --- Two routers, one validating, one not.
  bgp::BgpSpeaker router_a(net::Asn(64500));  // legacy: no validation
  bgp::BgpSpeaker router_b(net::Asn(64501));  // RPKI-enabled
  router_b.enable_origin_validation(&index);

  const bgp::RouteUpdate legitimate{site_prefix,
                                    bgp::AsPath::sequence({3320, 36561})};
  const auto hijack_prefix = net::Prefix::parse("208.65.153.0/24").value();
  const bgp::RouteUpdate hijack{hijack_prefix,
                                bgp::AsPath::sequence({9121, 17557})};
  (void)hijacker_asn;

  std::cout << "BGP updates arriving at both routers:\n";
  std::cout << "  legit : " << site_prefix.to_string() << " path 3320 36561  -> "
            << "A: " << to_string(router_a.process(legitimate))
            << " | B: " << to_string(router_b.process(legitimate)) << "\n";
  std::cout << "  hijack: " << hijack_prefix.to_string() << " path 9121 17557 -> "
            << "A: " << to_string(router_a.process(hijack))
            << " | B: " << to_string(router_b.process(hijack)) << "\n\n";

  // --- Where does traffic to the video site actually go?
  const auto viewer_target = net::IpAddress::parse("208.65.153.238").value();
  const auto best_a = router_a.best_route(viewer_target);
  const auto best_b = router_b.best_route(viewer_target);

  std::cout << "Forwarding decision for " << viewer_target.to_string() << ":\n";
  if (best_a) {
    std::cout << "  router A (no RPKI):  via " << best_a->prefix.to_string()
              << " path [" << best_a->as_path.to_string() << "]  <-- HIJACKED\n";
  }
  if (best_b) {
    std::cout << "  router B (RPKI):     via " << best_b->prefix.to_string()
              << " path [" << best_b->as_path.to_string() << "]  ("
              << rpki::to_string(best_b->validity) << ")\n";
  }

  const bool demo_ok = best_a && best_a->as_path.origin()->value() == 17557 &&
                       best_b && best_b->as_path.origin()->value() == 36561;
  std::cout << "\n"
            << (demo_ok ? "Origin validation prevented the hijack on router B."
                        : "Unexpected outcome; demo invariant violated!")
            << "\n";
  return demo_ok ? 0 : 1;
}
