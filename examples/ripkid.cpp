// ripkid: a long-running measurement daemon with live telemetry.
//
// Re-runs the paper's four-stage pipeline (DNS -> BGP -> RPKI -> origin
// validation) on an interval and serves pull-based telemetry between
// runs from an embedded HTTP server:
//
//   curl localhost:<port>/metrics        Prometheus text exposition
//   curl localhost:<port>/metrics.json   registry as JSON
//   curl localhost:<port>/healthz        per-stage health (200/503)
//   curl localhost:<port>/tracez         Chrome trace JSON (Perfetto)
//   curl localhost:<port>/logz           log flight-recorder dump
//   curl localhost:<port>/runz           last run's per-run stage table
//
//   build/examples/ripkid [--port N] [--interval SEC] [--domains N]
//                         [--iterations N] [--sample N] [--threads N]
//                         [--rtr] [--rrdp]
//
// --iterations 0 (default) runs until SIGINT/SIGTERM; --port 0 (default)
// binds an ephemeral port and prints it. --sample N records one of every
// N spans in the trace timeline. --threads N shards the domain sweep
// across N workers (0 = serial); the sweep's thread count and hot-path
// cache hit rates appear on /runz and as `ripki.exec.*` gauges on
// /metrics.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <thread>

#include "core/export.hpp"
#include "core/pipeline.hpp"
#include "obs/logring.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace ripki;

  web::EcosystemConfig ecosystem_config;
  ecosystem_config.domain_count = 20'000;
  core::PipelineConfig pipeline_config;
  std::uint16_t port = 0;
  unsigned interval_sec = 30;
  std::uint64_t iterations = 0;
  std::uint32_t sample_every = 1;

  for (int i = 1; i < argc; ++i) {
    const auto next_u64 = [&](std::uint64_t fallback) {
      return i + 1 < argc ? std::strtoull(argv[++i], nullptr, 10) : fallback;
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(next_u64(0));
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      interval_sec = static_cast<unsigned>(next_u64(30));
    } else if (std::strcmp(argv[i], "--domains") == 0) {
      ecosystem_config.domain_count = next_u64(20'000);
    } else if (std::strcmp(argv[i], "--iterations") == 0) {
      iterations = next_u64(0);
    } else if (std::strcmp(argv[i], "--sample") == 0) {
      sample_every = static_cast<std::uint32_t>(next_u64(1));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      pipeline_config.threads = next_u64(0);
    } else if (std::strcmp(argv[i], "--rtr") == 0) {
      pipeline_config.use_rtr = true;
    } else if (std::strcmp(argv[i], "--rrdp") == 0) {
      pipeline_config.use_rrdp = true;
    } else {
      std::cerr << "unknown flag: " << argv[i] << '\n';
      return 2;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  obs::Registry registry;
  obs::EventTracer tracer(/*capacity=*/1 << 16, sample_every);
  obs::LogRing log_ring(/*capacity=*/512);
  log_ring.set_dump_on_error(&std::cerr);
  obs::Logger::global().attach_ring(&log_ring);
  obs::HealthRegistry health;
  health.set("pipeline", false, "no completed run yet");

  pipeline_config.registry = &registry;
  pipeline_config.tracer = &tracer;
  pipeline_config.health = &health;
  pipeline_config.verbosity = obs::LogLevel::kInfo;

  obs::TelemetryServer server({.port = port}, &tracer, &log_ring, &health);
  core::attach_metrics_endpoints(server, registry);

  // Last run's per-interval stage table, served at /runz.
  std::mutex runz_mutex;
  std::string runz = "(no completed run yet)\n";
  server.set_handler("/runz", [&] {
    obs::HttpResponse response;
    std::lock_guard lock(runz_mutex);
    response.body = runz;
    return response;
  });

  if (!server.start()) {
    std::cerr << "ripkid: failed to bind " << port << '\n';
    return 1;
  }
  std::cout << "ripkid: telemetry on http://127.0.0.1:" << server.port()
            << "/ (metrics, metrics.json, healthz, tracez, logz, runz)\n";

  std::cout << "ripkid: generating ecosystem ("
            << ecosystem_config.domain_count << " domains, sweep threads="
            << pipeline_config.threads << ")...\n";
  const auto ecosystem = web::Ecosystem::generate(ecosystem_config);
  registry.counter("ripki.ripkid.runs_total");
  registry.describe("ripki.ripkid.runs_total",
                    "Completed pipeline iterations since daemon start");

  for (std::uint64_t run = 0; iterations == 0 || run < iterations; ++run) {
    if (g_stop) break;
    RIPKI_LOG_INFO("ripkid", "pipeline run starting",
                   obs::LogField("run", run + 1));
    const auto before = registry.collect();
    core::MeasurementPipeline pipeline(*ecosystem, pipeline_config);
    const core::Dataset dataset = pipeline.run();
    registry.counter("ripki.ripkid.runs_total").inc();
    const auto delta = obs::delta_snapshots(before, registry.collect());

    {
      const auto& caches = pipeline.cache_stats();
      char cache_line[256];
      std::snprintf(cache_line, sizeof cache_line,
                    "sweep threads: %zu\n"
                    "covering cache: %llu hits / %llu misses (%.1f%% hit)\n"
                    "validation cache: %llu hits / %llu misses (%.1f%% hit)\n",
                    pipeline_config.threads,
                    static_cast<unsigned long long>(caches.covering_hits),
                    static_cast<unsigned long long>(caches.covering_misses),
                    caches.covering_hit_rate() * 100.0,
                    static_cast<unsigned long long>(caches.validation_hits),
                    static_cast<unsigned long long>(caches.validation_misses),
                    caches.validation_hit_rate() * 100.0);
      const auto& setup = pipeline.setup_stats();
      char setup_line[256];
      std::snprintf(setup_line, sizeof setup_line,
                    "setup: MRT parse %.1f ms (%.0f records/s), "
                    "ROA validation %.1f ms (%.0f ROAs/s)\n",
                    setup.rib_prepare_ms, setup.mrt_records_per_sec,
                    setup.vrp_prepare_ms, setup.roas_per_sec);
      std::lock_guard lock(runz_mutex);
      runz = "run " + std::to_string(run + 1) + " (per-run deltas)\n" +
             cache_line + setup_line + obs::stage_report(delta);
    }
    std::cout << "ripkid: run " << run + 1 << " done — "
              << dataset.counters.domains_total << " domains, "
              << dataset.counters.dns_queries << " DNS queries, tracer "
              << tracer.recorded() << " events (" << tracer.dropped()
              << " dropped)\n";

    if (iterations != 0 && run + 1 >= iterations) break;
    // Sleep in short slices so SIGINT lands promptly while the telemetry
    // server keeps answering scrapes in its own thread.
    for (unsigned slept = 0; slept < interval_sec * 10 && !g_stop; ++slept) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  std::cout << "ripkid: shutting down after " << server.requests_served()
            << " telemetry requests\n";
  server.stop();
  obs::Logger::global().attach_ring(nullptr);
  return 0;
}
