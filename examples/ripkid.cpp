// ripkid: a long-running measurement daemon with live telemetry.
//
// Re-runs the paper's four-stage pipeline (DNS -> BGP -> RPKI -> origin
// validation) on an interval and serves pull-based telemetry between
// runs from an embedded HTTP server:
//
//   curl localhost:<port>/metrics        Prometheus text exposition
//   curl localhost:<port>/metrics.json   registry as JSON
//   curl localhost:<port>/healthz        per-stage health (200/503)
//   curl localhost:<port>/tracez         Chrome trace JSON (Perfetto)
//   curl localhost:<port>/logz           log flight-recorder dump
//   curl localhost:<port>/runz           last run's per-run stage table
//   curl localhost:<port>/schedz         scheduler X-ray: per-worker
//                                        utilization, steals, stage split
//   curl localhost:<port>/varz           per-interval metric history (JSON)
//   curl localhost:<port>/pprofz         timed CPU profile (folded stacks)
//   curl localhost:<port>/slowz          API slow-request rings + span trees
//   curl localhost:<port>/accessz        API access-log window
//   curl localhost:<port>/deltaz         incremental-pipeline telemetry
//
// and the measurement query API on its own port (printed at start):
//
//   curl localhost:<api-port>/v1/domain/<name>
//   curl localhost:<api-port>/v1/ip/<addr>
//   curl localhost:<api-port>/v1/prefix/<prefix>/<asn>
//   curl localhost:<api-port>/v1/summary
//
//   build/examples/ripkid [--port N] [--api-port N] [--rate-limit N]
//                         [--serve-shards N] [--interval SEC] [--domains N]
//                         [--iterations N] [--sample N] [--threads N]
//                         [--delta] [--full] [--oracle-every N]
//                         [--churn FRAC] [--profile] [--rtr] [--rrdp]
//
// --iterations 0 (default) runs until SIGINT/SIGTERM; --port 0 (default)
// binds an ephemeral port and prints it (--api-port likewise). --sample N
// records one of every N spans in the trace timeline. --threads N shards
// the domain sweep across N workers, clamped to the host's hardware
// concurrency (--threads 0 resolves to exactly that clamp; omitting the
// flag runs serial); the sweep's effective thread
// count and hot-path cache hit rates appear on /runz and as
// `ripki.exec.*` gauges on /metrics. --rate-limit N caps each API client
// at N requests/second (burst 2N; 0 = unlimited; the budget is shared
// across reactor shards, so it is invariant under --serve-shards).
// --serve-shards N runs the query API on N reactor shards — one event
// loop + thread per shard, SO_REUSEPORT listeners when the kernel
// supports it (0 = all hardware threads); per-shard fleet telemetry
// appears as the serve_shards block on /runz and /schedz and as
// shard-labeled `ripki.serve.*` metrics. Each completed run
// publishes a fresh query snapshot (RCU swap); /runz reports the served
// generation/parent lineage, response-cache hit rate, and rate-limited
// request count, and appends one interval to the /varz history ring
// (last 64 intervals).
//
// --delta switches the run loop to the incremental pipeline: instead of
// re-measuring every domain per interval, a deterministic churn tick is
// generated and applied end to end (zone overlay -> RIB -> RTR-synced
// VRPs -> dirty-row re-sweep -> snapshot delta), publishing generation
// N+1 derived from N. --full (the default) keeps the classic
// full-rebuild loop. --oracle-every N, in delta mode, rebuilds the world
// from scratch every Nth tick and byte-compares all /v1/* renderings
// against the published delta snapshot (0 = never); divergence is fatal.
// --churn FRAC sets the per-tick domain churn fraction (default 0.01).
// Both modes schedule ticks on absolute deadlines (start + k*interval),
// so a slow run delays but never accumulates drift; observed scheduling
// jitter (last/max) is reported on /runz.
// --profile arms the sampling profiler at daemon start (always-on,
// 100 Hz); without it the profiler sits idle until a /pprofz capture
// starts it one-shot.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <thread>

#include "core/export.hpp"
#include "core/pipeline.hpp"
#include "delta/churn.hpp"
#include "delta/pipeline.hpp"
#include "exec/thread_pool.hpp"
#include "obs/logring.hpp"
#include "obs/profiler.hpp"
#include "obs/sched.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace ripki;

  web::EcosystemConfig ecosystem_config;
  ecosystem_config.domain_count = 20'000;
  core::PipelineConfig pipeline_config;
  std::uint16_t port = 0;
  std::uint16_t api_port = 0;
  double rate_limit = 0.0;
  std::uint32_t serve_shards = 1;
  unsigned interval_sec = 30;
  std::uint64_t iterations = 0;
  std::uint32_t sample_every = 1;
  bool profile = false;
  bool delta_mode = false;
  std::uint64_t oracle_every = 0;
  double churn_fraction = 0.01;

  for (int i = 1; i < argc; ++i) {
    const auto next_u64 = [&](std::uint64_t fallback) {
      return i + 1 < argc ? std::strtoull(argv[++i], nullptr, 10) : fallback;
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(next_u64(0));
    } else if (std::strcmp(argv[i], "--api-port") == 0) {
      api_port = static_cast<std::uint16_t>(next_u64(0));
    } else if (std::strcmp(argv[i], "--rate-limit") == 0) {
      rate_limit = static_cast<double>(next_u64(0));
    } else if (std::strcmp(argv[i], "--serve-shards") == 0) {
      // --serve-shards 0 means "one reactor shard per hardware thread".
      serve_shards = static_cast<std::uint32_t>(next_u64(1));
      if (serve_shards == 0) {
        serve_shards = std::max(1u, std::thread::hardware_concurrency());
      }
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      interval_sec = static_cast<unsigned>(next_u64(30));
    } else if (std::strcmp(argv[i], "--domains") == 0) {
      ecosystem_config.domain_count = next_u64(20'000);
    } else if (std::strcmp(argv[i], "--iterations") == 0) {
      iterations = next_u64(0);
    } else if (std::strcmp(argv[i], "--sample") == 0) {
      sample_every = static_cast<std::uint32_t>(next_u64(1));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      // --threads 0 means "all hardware threads"; the pipeline clamps
      // larger requests down to hardware concurrency anyway.
      pipeline_config.threads = next_u64(0);
      if (pipeline_config.threads == 0) {
        pipeline_config.threads = std::max(1u, std::thread::hardware_concurrency());
      }
    } else if (std::strcmp(argv[i], "--delta") == 0) {
      delta_mode = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      delta_mode = false;
    } else if (std::strcmp(argv[i], "--oracle-every") == 0) {
      oracle_every = next_u64(0);
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      churn_fraction =
          i + 1 < argc ? std::strtod(argv[++i], nullptr) : churn_fraction;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--rtr") == 0) {
      pipeline_config.use_rtr = true;
    } else if (std::strcmp(argv[i], "--rrdp") == 0) {
      pipeline_config.use_rrdp = true;
    } else {
      std::cerr << "unknown flag: " << argv[i] << '\n';
      return 2;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  obs::Registry registry;
  obs::EventTracer tracer(/*capacity=*/1 << 16, sample_every);
  obs::LogRing log_ring(/*capacity=*/512);
  log_ring.set_dump_on_error(&std::cerr);
  obs::Logger::global().attach_ring(&log_ring);
  obs::HealthRegistry health;
  health.set("pipeline", false, "no completed run yet");

  // Scheduler X-ray for the sweep: per-worker timelines, queue-depth
  // samples, stage attribution. Serves /schedz and joins /tracez.
  obs::SchedTelemetry sched(&registry);

  pipeline_config.registry = &registry;
  pipeline_config.tracer = &tracer;
  pipeline_config.health = &health;
  pipeline_config.sched = &sched;
  pipeline_config.verbosity = obs::LogLevel::kInfo;

  obs::TelemetryServer server({.port = port}, &tracer, &log_ring, &health);
  server.set_sched(&sched);
  core::attach_metrics_endpoints(server, registry);

  // CPU profiler behind /pprofz on both servers; --profile arms it for
  // the daemon's whole lifetime (always-on captures window the running
  // buffer instead of starting a one-shot).
  obs::SamplingProfiler profiler;
  server.set_profiler(&profiler);
  if (profile && !profiler.start()) {
    std::cerr << "ripkid: --profile: failed to arm SIGPROF profiler\n";
    return 1;
  }

  // Last run's per-interval stage table, served at /runz.
  std::mutex runz_mutex;
  std::string runz = "(no completed run yet)\n";
  server.set_handler("/runz", [&] {
    obs::HttpResponse response;
    std::lock_guard lock(runz_mutex);
    response.body = runz;
    return response;
  });

  // Per-interval metric history (one entry per completed run), at /varz.
  obs::TimeSeriesRing varz(/*capacity=*/64);
  server.set_handler("/varz", [&varz] {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = varz.render_json();
    return response;
  });

  // Incremental-pipeline telemetry: the latest tick's /deltaz payload,
  // snapshotted under the mutex after each apply (full mode reports the
  // mode only).
  std::mutex deltaz_mutex;
  std::string deltaz = "{\"mode\":\"full\"}";
  server.set_handler("/deltaz", [&] {
    obs::HttpResponse response;
    response.content_type = "application/json";
    std::lock_guard lock(deltaz_mutex);
    response.body = deltaz;
    return response;
  });

  if (!server.start()) {
    std::cerr << "ripkid: failed to bind " << port << '\n';
    return 1;
  }
  std::cout << "ripkid: telemetry on http://127.0.0.1:" << server.port()
            << "/ (metrics, metrics.json, healthz, tracez, schedz, logz, "
               "runz, varz, pprofz"
            << (profile ? "; profiler armed at 100 Hz" : "") << ")\n";

  // The query API: lookups answered from the latest run's snapshot,
  // handlers fanned out over a small worker pool.
  exec::ThreadPool api_pool(2, &registry);
  serve::QueryServiceOptions api_options;
  api_options.http.port = api_port;
  api_options.http.shards = serve_shards;
  api_options.rate_limit.tokens_per_sec = rate_limit;
  api_options.rate_limit.burst = rate_limit * 2.0;
  api_options.pool = &api_pool;
  api_options.registry = &registry;
  api_options.profiler = &profiler;
  serve::QueryService api(std::move(api_options));
  if (!api.start()) {
    std::cerr << "ripkid: failed to bind api port " << api_port << '\n';
    return 1;
  }

  // The API's request diagnostics, mirrored onto the telemetry port so
  // one scrape target covers the daemon.
  server.set_handler("/slowz", [&api] {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = api.slow_requests().render_json();
    return response;
  });
  server.set_handler("/accessz", [&api] {
    obs::HttpResponse response;
    // One ring per reactor shard; concatenate them all.
    for (std::uint32_t s = 0; s < api.server().shard_count(); ++s) {
      response.body += api.access_log(s).render_text();
    }
    return response;
  });
  // /schedz with the serve-fleet block spliced into the top-level
  // object: {"schedz":{...},"serve_shards":[...]} — per-shard accepted/
  // active connections, requests, cache hit rate, drop breakdown.
  server.set_handler("/schedz", [&api, &sched] {
    obs::HttpResponse response;
    response.content_type = "application/json";
    std::string body = sched.render_json();
    body.insert(body.size() - 1, ",\"serve_shards\":" + api.shards_json());
    response.body = std::move(body);
    return response;
  });
  char rate_text[32];
  std::snprintf(rate_text, sizeof rate_text, "%g/s", rate_limit);
  std::cout << "ripkid: query api on http://127.0.0.1:" << api.port()
            << "/v1/ (domain, ip, prefix, summary; rate limit "
            << (rate_limit > 0.0 ? rate_text : "off") << "; "
            << api.server().shard_count() << " reactor shard(s), "
            << api.server().accept_mode() << " accept, "
            << api.server().backend_name() << " backend)\n";

  std::cout << "ripkid: generating ecosystem ("
            << ecosystem_config.domain_count << " domains, sweep threads="
            << pipeline_config.threads << ")...\n";
  const auto ecosystem = web::Ecosystem::generate(ecosystem_config);
  registry.counter("ripki.ripkid.runs_total");
  registry.describe("ripki.ripkid.runs_total",
                    "Completed pipeline iterations since daemon start");

  // Absolute-deadline tick scheduling, shared by both modes: the k-th
  // tick fires at start + k*interval, so a slow run delays its own tick
  // but never shifts the schedule (the old sleep-after-work loop drifted
  // by one run duration per interval). Sleeps in short slices so SIGINT
  // lands promptly while the telemetry server keeps answering scrapes.
  const auto interval = std::chrono::seconds(interval_sec);
  auto deadline = std::chrono::steady_clock::now();
  double jitter_last_ms = 0.0;
  double jitter_max_ms = 0.0;
  const auto wait_for_next_tick = [&] {
    deadline += interval;
    auto now = std::chrono::steady_clock::now();
    if (deadline < now) deadline = now;  // overran: fire now, don't burst
    while (!g_stop && (now = std::chrono::steady_clock::now()) < deadline) {
      std::this_thread::sleep_for(
          std::min<std::chrono::steady_clock::duration>(
              deadline - now, std::chrono::milliseconds(100)));
    }
    jitter_last_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - deadline)
                         .count();
    jitter_max_ms = std::max(jitter_max_ms, jitter_last_ms);
  };

  auto varz_tick = std::chrono::steady_clock::now();

  if (delta_mode) {
    // Incremental mode: init once (full measurement, generation 1), then
    // per tick apply a churn delta end to end and publish N+1 from N.
    delta::DeltaConfig delta_config;
    delta_config.churn.seed = ecosystem_config.seed;
    delta_config.churn.domain_churn_fraction = churn_fraction;
    std::cout << "ripkid: initialising incremental pipeline (churn "
              << churn_fraction << "/tick, oracle every "
              << oracle_every << " ticks)...\n";
    delta::IncrementalPipeline incremental(*ecosystem, delta_config);
    incremental.init();
    delta::TickGenerator churn(delta_config.churn, incremental.universe());
    api.publish(incremental.snapshot());
    health.set("pipeline", true, "incremental generation 1");
    {
      std::lock_guard lock(deltaz_mutex);
      deltaz = incremental.deltaz_json();
    }
    std::cout << "ripkid: generation 1 published ("
              << incremental.row_count() << " rows)\n";

    for (std::uint64_t run = 0; iterations == 0 || run < iterations; ++run) {
      wait_for_next_tick();
      if (g_stop) break;
      const delta::Tick tick = churn.next();
      const delta::TickStats stats = incremental.apply_tick(tick);
      api.publish(incremental.snapshot());
      registry.counter("ripki.ripkid.runs_total").inc();
      health.set("pipeline", stats.rtr_in_sync,
                 stats.rtr_in_sync
                     ? "incremental generation " +
                           std::to_string(stats.generation)
                     : "rtr serial sync diverged");

      bool oracle_checked = false;
      delta::IncrementalPipeline::OracleReport oracle;
      if (oracle_every != 0 && tick.number % oracle_every == 0) {
        oracle = incremental.check_against(*incremental.full_rebuild());
        oracle_checked = true;
      }

      {
        const auto now = std::chrono::steady_clock::now();
        varz.record(registry.collect(),
                    std::chrono::duration<double>(now - varz_tick).count());
        varz_tick = now;
      }

      {
        char line[640];
        std::snprintf(
            line, sizeof line,
            "tick %llu (incremental, generation %llu from %llu%s)\n"
            "events: %zu (dns dirty names %zu, dirty rows %zu, changed %zu)\n"
            "rib: -%zu +%zu; vrps: +%zu -%zu; rtr serial %u %s\n"
            "apply: %.3f ms; snapshot overlay %zu rows; compactions %llu\n"
            "oracle: %s\n"
            "tick scheduling: absolute deadlines; jitter last %.2f ms, "
            "max %.2f ms\n",
            static_cast<unsigned long long>(tick.number),
            static_cast<unsigned long long>(stats.generation),
            static_cast<unsigned long long>(stats.generation - 1),
            stats.compacted ? ", compacted" : ", delta",
            stats.events, stats.dns_dirty_names, stats.dirty_rows,
            stats.changed_rows, stats.rib_withdrawn, stats.rib_announced,
            stats.vrp_added, stats.vrp_removed, stats.rtr_serial,
            stats.rtr_in_sync ? "in sync" : "DIVERGED",
            stats.apply_ms, stats.overlay_size,
            static_cast<unsigned long long>(incremental.compactions()),
            !oracle_checked ? "not checked this tick"
                            : (oracle.identical ? "identical to full rebuild"
                                                : oracle.divergence.c_str()),
            jitter_last_ms, jitter_max_ms);
        std::lock_guard lock(runz_mutex);
        runz = std::string(line) +
               "serve_shards: " + api.shards_json() + "\n";
      }
      {
        std::lock_guard lock(deltaz_mutex);
        deltaz = incremental.deltaz_json();
      }
      std::cout << "ripkid: tick " << tick.number << " done — generation "
                << stats.generation << ", " << stats.events << " events, "
                << stats.dirty_rows << " rows re-swept in "
                << stats.apply_ms << " ms"
                << (oracle_checked
                        ? (oracle.identical ? " (oracle: identical)"
                                            : " (ORACLE DIVERGED)")
                        : "")
                << "\n";
      if (oracle_checked && !oracle.identical) {
        std::cerr << "ripkid: oracle divergence: " << oracle.divergence
                  << "\n";
        api.stop();
        server.stop();
        obs::Logger::global().attach_ring(nullptr);
        return 1;
      }
    }

    std::cout << "ripkid: shutting down after " << server.requests_served()
              << " telemetry requests, " << api.requests_served()
              << " api requests\n";
    api.stop();
    server.stop();
    obs::Logger::global().attach_ring(nullptr);
    return 0;
  }

  for (std::uint64_t run = 0; iterations == 0 || run < iterations; ++run) {
    if (g_stop) break;
    RIPKI_LOG_INFO("ripkid", "pipeline run starting",
                   obs::LogField("run", run + 1));
    const auto before = registry.collect();
    core::MeasurementPipeline pipeline(*ecosystem, pipeline_config);
    const core::Dataset dataset = pipeline.run();
    registry.counter("ripki.ripkid.runs_total").inc();
    const auto delta = obs::delta_snapshots(before, registry.collect());

    // One /varz interval per run: deltas over the wall time since the
    // previous tick (run + idle sleep), so per-second rates are honest.
    {
      const auto now = std::chrono::steady_clock::now();
      varz.record(registry.collect(),
                  std::chrono::duration<double>(now - varz_tick).count());
      varz_tick = now;
    }

    // Publish this run's snapshot to the query API (RCU swap; in-flight
    // requests finish on the previous generation).
    api.publish(serve::Snapshot::build(dataset, pipeline.rib(),
                                       pipeline.validation_report().vrps,
                                       /*generation=*/run + 1,
                                       /*parent_generation=*/run));

    {
      const auto& caches = pipeline.cache_stats();
      char cache_line[256];
      std::snprintf(cache_line, sizeof cache_line,
                    "sweep threads: %zu\n"
                    "covering cache: %llu hits / %llu misses (%.1f%% hit)\n"
                    "validation cache: %llu hits / %llu misses (%.1f%% hit)\n",
                    pipeline_config.threads,
                    static_cast<unsigned long long>(caches.covering_hits),
                    static_cast<unsigned long long>(caches.covering_misses),
                    caches.covering_hit_rate() * 100.0,
                    static_cast<unsigned long long>(caches.validation_hits),
                    static_cast<unsigned long long>(caches.validation_misses),
                    caches.validation_hit_rate() * 100.0);
      // Per-worker split, so one worker with a cold cache (imbalanced
      // shard mix) is visible instead of averaged away.
      std::string worker_lines;
      if (caches.workers.size() > 1) {
        for (std::size_t w = 0; w < caches.workers.size(); ++w) {
          const auto& wk = caches.workers[w];
          char line[192];
          std::snprintf(
              line, sizeof line,
              "  worker %zu: covering %.1f%% hit (%llu/%llu), "
              "validation %.1f%% hit (%llu/%llu)\n",
              w, wk.covering_hit_rate() * 100.0,
              static_cast<unsigned long long>(wk.covering_hits),
              static_cast<unsigned long long>(wk.covering_hits +
                                              wk.covering_misses),
              wk.validation_hit_rate() * 100.0,
              static_cast<unsigned long long>(wk.validation_hits),
              static_cast<unsigned long long>(wk.validation_hits +
                                              wk.validation_misses));
          worker_lines += line;
        }
      }
      // One-line scheduler summary; /schedz has the full X-ray.
      char sched_line[224];
      {
        const auto ss = sched.snapshot();
        const std::size_t sweep_workers =
            ss.lanes.size() > 1 ? ss.lanes.size() - 1 : ss.lanes.size();
        std::uint64_t tasks = 0, steals = 0, run_ns = 0;
        for (std::size_t i = 0; i < sweep_workers; ++i) {
          tasks += ss.lanes[i].tasks;
          steals += ss.lanes[i].steals;
          run_ns += ss.lanes[i].run_ns;
        }
        const double window_ms = ss.window_ms();
        const double util =
            sweep_workers == 0 || window_ms <= 0.0
                ? 0.0
                : static_cast<double>(run_ns) / 1e6 /
                      (window_ms * static_cast<double>(sweep_workers)) * 100.0;
        std::snprintf(sched_line, sizeof sched_line,
                      "scheduler: %zu lanes, %llu tasks (%llu stolen), "
                      "utilization %.1f%% — /schedz for the full X-ray\n",
                      ss.lanes.size(),
                      static_cast<unsigned long long>(tasks),
                      static_cast<unsigned long long>(steals), util);
      }
      const auto& setup = pipeline.setup_stats();
      char setup_line[256];
      std::snprintf(setup_line, sizeof setup_line,
                    "setup: MRT parse %.1f ms (%.0f records/s), "
                    "ROA validation %.1f ms (%.0f ROAs/s)\n",
                    setup.rib_prepare_ms, setup.mrt_records_per_sec,
                    setup.vrp_prepare_ms, setup.roas_per_sec);
      char serving_line[256];
      std::snprintf(serving_line, sizeof serving_line,
                    "serving: generation %llu (parent %llu, full rebuild), "
                    "%llu domains, %u reactor "
                    "shard(s) [%s], response cache %.1f%% hit, "
                    "%llu rate-limited\n",
                    static_cast<unsigned long long>(run + 1),
                    static_cast<unsigned long long>(run),
                    static_cast<unsigned long long>(dataset.domains.size()),
                    api.server().shard_count(), api.server().accept_mode(),
                    api.cache_hit_rate() * 100.0,
                    static_cast<unsigned long long>(api.limiter().rejected()));
      char jitter_line[160];
      std::snprintf(jitter_line, sizeof jitter_line,
                    "tick scheduling: absolute deadlines; jitter last "
                    "%.2f ms, max %.2f ms\n",
                    jitter_last_ms, jitter_max_ms);
      std::lock_guard lock(runz_mutex);
      runz = "run " + std::to_string(run + 1) + " (per-run deltas)\n" +
             cache_line + worker_lines + sched_line + setup_line +
             serving_line + jitter_line +
             "serve_shards: " + api.shards_json() + "\n" +
             obs::stage_report(delta);
    }
    std::cout << "ripkid: run " << run + 1 << " done — "
              << dataset.counters.domains_total << " domains, "
              << dataset.counters.dns_queries << " DNS queries, tracer "
              << tracer.recorded() << " events (" << tracer.dropped()
              << " dropped)\n";

    if (iterations != 0 && run + 1 >= iterations) break;
    wait_for_next_tick();
  }

  std::cout << "ripkid: shutting down after " << server.requests_served()
            << " telemetry requests, " << api.requests_served()
            << " api requests\n";
  api.stop();
  server.stop();
  obs::Logger::global().attach_ring(nullptr);
  return 0;
}
