#include <gtest/gtest.h>

#include "bgp/as_path.hpp"
#include "bgp/collector.hpp"
#include "bgp/mrt.hpp"
#include "bgp/rib.hpp"
#include "bgp/speaker.hpp"

namespace ripki::bgp {
namespace {

net::Prefix P(const std::string& text) { return net::Prefix::parse(text).value(); }
net::IpAddress A(const std::string& text) {
  return net::IpAddress::parse(text).value();
}

// --- AsPath -----------------------------------------------------------------

TEST(AsPath, OriginIsRightMostAsn) {
  const AsPath path = AsPath::sequence({3320, 1299, 15169});
  ASSERT_TRUE(path.origin().has_value());
  EXPECT_EQ(path.origin()->value(), 15169u);
  EXPECT_EQ(path.hop_count(), 3u);
  EXPECT_FALSE(path.contains_as_set());
}

TEST(AsPath, AsSetTerminatedPathHasAmbiguousOrigin) {
  PathSegment seq{SegmentType::kAsSequence, {net::Asn(3320), net::Asn(1299)}};
  PathSegment set{SegmentType::kAsSet, {net::Asn(64512), net::Asn(64513)}};
  const AsPath path({seq, set});
  EXPECT_FALSE(path.origin().has_value());
  EXPECT_TRUE(path.contains_as_set());
  EXPECT_EQ(path.hop_count(), 4u);
}

TEST(AsPath, EmptyPathHasNoOrigin) {
  EXPECT_FALSE(AsPath{}.origin().has_value());
  EXPECT_TRUE(AsPath{}.empty());
}

TEST(AsPath, PrependAddsFirstHop) {
  const AsPath path = AsPath::sequence({1299, 15169});
  const AsPath longer = path.prepended(net::Asn(3320));
  EXPECT_EQ(longer.hop_count(), 3u);
  EXPECT_EQ(longer.segments().front().asns.front().value(), 3320u);
  EXPECT_EQ(longer.origin()->value(), 15169u);
}

TEST(AsPath, ToStringShowsSets) {
  PathSegment seq{SegmentType::kAsSequence, {net::Asn(3320)}};
  PathSegment set{SegmentType::kAsSet, {net::Asn(1), net::Asn(2)}};
  EXPECT_EQ(AsPath({seq, set}).to_string(), "3320 {1,2}");
}

TEST(AsPath, WireRoundTrip) {
  PathSegment seq{SegmentType::kAsSequence, {net::Asn(3320), net::Asn(70000)}};
  PathSegment set{SegmentType::kAsSet, {net::Asn(64512)}};
  const AsPath path({seq, set});

  util::ByteWriter w;
  path.encode_into(w);
  auto decoded = AsPath::decode(w.bytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), path);
}

TEST(AsPath, DecodeRejectsBadSegmentType) {
  const util::Bytes bytes = {9, 1, 0, 0, 0, 1};
  EXPECT_FALSE(AsPath::decode(bytes).ok());
}

TEST(AsPath, DecodeRejectsTruncation) {
  const util::Bytes bytes = {2, 2, 0, 0, 0, 1};  // claims 2 ASNs, has 1
  EXPECT_FALSE(AsPath::decode(bytes).ok());
}

// --- Rib ----------------------------------------------------------------------

TEST(Rib, CoveringAndOrigins) {
  Rib rib;
  rib.add(RibEntry{P("10.0.0.0/8"), AsPath::sequence({1, 100}), 0, 0});
  rib.add(RibEntry{P("10.0.0.0/8"), AsPath::sequence({2, 100}), 1, 0});
  rib.add(RibEntry{P("10.1.0.0/16"), AsPath::sequence({1, 200}), 0, 0});

  const auto covering = rib.covering(A("10.1.2.3"));
  ASSERT_EQ(covering.size(), 2u);
  EXPECT_EQ(covering[0].prefix, P("10.0.0.0/8"));
  EXPECT_EQ(covering[1].prefix, P("10.1.0.0/16"));

  const auto origins = rib.origins_for(P("10.0.0.0/8"));
  ASSERT_EQ(origins.size(), 1u);
  EXPECT_EQ(origins.begin()->value(), 100u);
}

TEST(Rib, OriginsExcludeAsSetPaths) {
  Rib rib;
  rib.add(RibEntry{P("10.0.0.0/8"), AsPath::sequence({1, 100}), 0, 0});
  PathSegment seq{SegmentType::kAsSequence, {net::Asn(2)}};
  PathSegment set{SegmentType::kAsSet, {net::Asn(300), net::Asn(400)}};
  rib.add(RibEntry{P("10.0.0.0/8"), AsPath({seq, set}), 1, 0});

  const auto origins = rib.origins_for(P("10.0.0.0/8"));
  EXPECT_EQ(origins.size(), 1u);  // the AS_SET entry contributes nothing
  EXPECT_EQ(rib.entry_count(), 2u);
}

TEST(Rib, MultipleOriginsVisible) {
  Rib rib;
  rib.add(RibEntry{P("10.0.0.0/8"), AsPath::sequence({1, 100}), 0, 0});
  rib.add(RibEntry{P("10.0.0.0/8"), AsPath::sequence({1, 999}), 0, 0});  // MOAS
  EXPECT_EQ(rib.origins_for(P("10.0.0.0/8")).size(), 2u);
}

// --- MRT ------------------------------------------------------------------------

Rib sample_rib() {
  Rib rib;
  rib.add_peer(PeerEntry{0xC0000001, A("192.0.2.10"), net::Asn(3320)});
  rib.add_peer(PeerEntry{0xC0000002, A("2001:db8::10"), net::Asn(1299)});
  rib.add(RibEntry{P("10.0.0.0/8"), AsPath::sequence({3320, 100}), 0, 1'400'000'000});
  rib.add(RibEntry{P("10.0.0.0/8"), AsPath::sequence({1299, 100}), 1, 1'400'000'001});
  rib.add(RibEntry{P("23.4.0.0/17"), AsPath::sequence({3320, 64512, 200}), 0,
                   1'400'000'002});
  rib.add(RibEntry{P("2a00:1450::/32"), AsPath::sequence({1299, 15169}), 1,
                   1'400'000'003});
  return rib;
}

TEST(Mrt, TableDumpRoundTrip) {
  const Rib original = sample_rib();
  const util::Bytes dump = mrt::write_table_dump(original, 0x0A000001, "test-view",
                                                 1'433'116'800);

  mrt::ParseStats stats;
  auto parsed = mrt::read_table_dump(dump, &stats);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Rib& rib = parsed.value();

  EXPECT_EQ(rib.peers().size(), 2u);
  EXPECT_EQ(rib.peers()[0].asn, net::Asn(3320));
  EXPECT_EQ(rib.peers()[1].address, A("2001:db8::10"));
  EXPECT_EQ(rib.prefix_count(), 3u);
  EXPECT_EQ(rib.entry_count(), 4u);
  EXPECT_EQ(stats.rib_entries, 4u);
  EXPECT_GT(stats.records, 1u);

  const auto* entries = rib.entries_for(P("10.0.0.0/8"));
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].as_path, AsPath::sequence({3320, 100}));
  EXPECT_EQ((*entries)[0].originated_at, 1'400'000'000u);

  const auto origins6 = rib.origins_for(P("2a00:1450::/32"));
  ASSERT_EQ(origins6.size(), 1u);
  EXPECT_EQ(origins6.begin()->value(), 15169u);
}

TEST(Mrt, SkipsUnknownAttributesButKeepsAsPath) {
  const Rib original = sample_rib();
  const util::Bytes dump =
      mrt::write_table_dump(original, 1, "v", 0);
  mrt::ParseStats stats;
  auto parsed = mrt::read_table_dump(dump, &stats);
  ASSERT_TRUE(parsed.ok());
  // ORIGIN and NEXT_HOP attributes are skipped (not AS_PATH).
  EXPECT_GT(stats.skipped_attributes, 0u);
}

TEST(Mrt, RecordRoundTrip) {
  util::ByteWriter w;
  mrt::write_record(w, mrt::Record{123, 13, 1, {9, 9, 9}});
  const auto buf = std::move(w).take();
  util::ByteReader r(buf);
  auto record = mrt::read_record(r);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().timestamp, 123u);
  EXPECT_EQ(record.value().type, 13u);
  EXPECT_EQ(record.value().subtype, 1u);
  EXPECT_EQ(record.value().body.size(), 3u);
}

TEST(Mrt, RejectsTruncatedDump) {
  util::Bytes dump = mrt::write_table_dump(sample_rib(), 1, "v", 0);
  dump.resize(dump.size() - 3);
  EXPECT_FALSE(mrt::read_table_dump(dump).ok());
}

TEST(Mrt, RejectsRibBeforePeerIndex) {
  // Build a dump whose first record is a RIB record.
  util::ByteWriter w;
  util::ByteWriter body;
  body.put_u32(0);       // sequence
  body.put_u8(8);        // prefix length
  body.put_u8(10);       // prefix byte
  body.put_u16(0);       // entry count
  mrt::write_record(w, mrt::Record{0, 13, 2, std::move(body).take()});
  EXPECT_FALSE(mrt::read_table_dump(w.bytes()).ok());
}

TEST(Mrt, ToleratesForeignRecordTypes) {
  const Rib original = sample_rib();
  util::Bytes dump = mrt::write_table_dump(original, 1, "v", 0);
  // Append a BGP4MP (type 16) record; the reader must skip it.
  util::ByteWriter w;
  w.put_bytes(dump);
  mrt::write_record(w, mrt::Record{0, 16, 4, {1, 2, 3}});
  auto parsed = mrt::read_table_dump(w.bytes());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entry_count(), original.entry_count());
}

// --- RouteCollector ------------------------------------------------------------------

TEST(RouteCollector, AnnouncementsLandInRibAndDump) {
  RouteCollector collector(0x0A000001, "ris-sim");
  const auto p0 = collector.add_peer(PeerEntry{1, A("192.0.2.1"), net::Asn(3320)});
  collector.announce(p0, P("10.0.0.0/8"), AsPath::sequence({3320, 100}), 7);

  EXPECT_EQ(collector.rib().entry_count(), 1u);
  auto parsed = mrt::read_table_dump(collector.dump_mrt(0));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entry_count(), 1u);
  EXPECT_EQ(parsed.value().origins_for(P("10.0.0.0/8")).begin()->value(), 100u);
}

// --- BgpSpeaker (hijack policy) ---------------------------------------------------------

class SpeakerTest : public ::testing::Test {
 protected:
  SpeakerTest() {
    index_.add(rpki::Vrp{P("10.10.0.0/16"), 16, net::Asn(65010)});
  }
  rpki::VrpIndex index_;
};

TEST_F(SpeakerTest, WithoutValidationHijackWins) {
  BgpSpeaker speaker(net::Asn(64500));
  // Legitimate route.
  speaker.process(RouteUpdate{P("10.10.0.0/16"), AsPath::sequence({3320, 65010})});
  // Sub-prefix hijack: longer match wins in plain BGP.
  speaker.process(RouteUpdate{P("10.10.128.0/17"), AsPath::sequence({666})});

  const auto best = speaker.best_route(A("10.10.200.1"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->prefix, P("10.10.128.0/17"));
  EXPECT_EQ(best->as_path.origin()->value(), 666u);
}

TEST_F(SpeakerTest, ValidationDropsHijack) {
  BgpSpeaker speaker(net::Asn(64500));
  speaker.enable_origin_validation(&index_);
  EXPECT_EQ(speaker.process(
                RouteUpdate{P("10.10.0.0/16"), AsPath::sequence({3320, 65010})}),
            PolicyAction::kAccepted);
  EXPECT_EQ(speaker.process(RouteUpdate{P("10.10.128.0/17"), AsPath::sequence({666})}),
            PolicyAction::kRejectedInvalid);

  const auto best = speaker.best_route(A("10.10.200.1"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->prefix, P("10.10.0.0/16"));
  EXPECT_EQ(best->validity, rpki::OriginValidity::kValid);
  EXPECT_EQ(speaker.counters().rejected_invalid, 1u);
}

TEST_F(SpeakerTest, NotFoundRoutesStillAccepted) {
  BgpSpeaker speaker(net::Asn(64500));
  speaker.enable_origin_validation(&index_);
  EXPECT_EQ(speaker.process(
                RouteUpdate{P("192.0.2.0/24"), AsPath::sequence({3320, 64501})}),
            PolicyAction::kAcceptedNotFound);
}

TEST_F(SpeakerTest, MalformedAnnouncementRejected) {
  BgpSpeaker speaker(net::Asn(64500));
  EXPECT_EQ(speaker.process(RouteUpdate{P("192.0.2.0/24"), AsPath{}}),
            PolicyAction::kRejectedMalformed);
}

TEST_F(SpeakerTest, ShortestPathPreferred) {
  BgpSpeaker speaker(net::Asn(64500));
  speaker.process(RouteUpdate{P("10.0.0.0/8"), AsPath::sequence({1, 2, 3, 100})});
  speaker.process(RouteUpdate{P("10.0.0.0/8"), AsPath::sequence({1, 100})});
  const auto best = speaker.best_route(A("10.1.1.1"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->as_path.hop_count(), 2u);
}

TEST_F(SpeakerTest, WithdrawRemovesRoutes) {
  BgpSpeaker speaker(net::Asn(64500));
  speaker.process(RouteUpdate{P("10.0.0.0/8"), AsPath::sequence({1, 100})});
  EXPECT_TRUE(speaker.best_route(A("10.1.1.1")).has_value());
  speaker.process(RouteUpdate{P("10.0.0.0/8"), {}, /*withdraw=*/true});
  EXPECT_FALSE(speaker.best_route(A("10.1.1.1")).has_value());
}

}  // namespace
}  // namespace ripki::bgp
