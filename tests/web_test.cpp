#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "rpki/validator.hpp"
#include "util/strings.hpp"
#include "web/allocator.hpp"
#include "web/as_registry.hpp"
#include "web/cdn.hpp"
#include "web/ecosystem.hpp"
#include "web/names.hpp"

#include <set>

namespace ripki::web {
namespace {

net::Prefix P(const std::string& text) { return net::Prefix::parse(text).value(); }

// --- PrefixAllocator -------------------------------------------------------

TEST(Allocator, HandsOutDisjointAlignedBlocks) {
  PrefixAllocator allocator(P("10.0.0.0/8"));
  std::vector<net::Prefix> allocated;
  for (int len : {16, 24, 20, 24, 18}) {
    auto p = allocator.allocate(len);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().length(), len);
    for (const auto& previous : allocated) {
      EXPECT_FALSE(previous.overlaps(p.value()))
          << previous.to_string() << " vs " << p.value().to_string();
    }
    EXPECT_TRUE(P("10.0.0.0/8").contains(p.value()));
    allocated.push_back(p.value());
  }
  EXPECT_GT(allocator.utilisation(), 0.0);
}

TEST(Allocator, RejectsOutOfRangeLengths) {
  PrefixAllocator allocator(P("10.0.0.0/8"));
  EXPECT_FALSE(allocator.allocate(7).ok());   // shorter than the pool
  EXPECT_FALSE(allocator.allocate(25).ok());  // finer than the /24 grain
}

TEST(Allocator, ExhaustsPool) {
  PrefixAllocator allocator(P("10.0.0.0/22"));  // 4 /24 grains
  EXPECT_TRUE(allocator.allocate(23).ok());
  EXPECT_TRUE(allocator.allocate(23).ok());
  EXPECT_FALSE(allocator.allocate(23).ok());
  EXPECT_DOUBLE_EQ(allocator.utilisation(), 1.0);
}

TEST(Allocator, V6UsesSlash48Grain) {
  PrefixAllocator allocator(P("2a00::/12"));
  auto p = allocator.allocate(32);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().length(), 32);
  EXPECT_TRUE(P("2a00::/12").contains(p.value()));
  EXPECT_FALSE(allocator.allocate(49).ok());
}

// --- CDN profiles ------------------------------------------------------------

TEST(CdnProfiles, MatchPaperCensus) {
  const auto& profiles = paper_cdn_profiles();
  EXPECT_EQ(profiles.size(), 16u);
  int total = 0;
  int internap = -1;
  for (const auto& profile : profiles) {
    total += profile.as_count;
    EXPECT_FALSE(profile.cname_suffixes.empty());
    if (profile.name == "Internap") {
      internap = profile.as_count;
      EXPECT_TRUE(profile.issues_roas);
    } else {
      EXPECT_FALSE(profile.issues_roas);
    }
  }
  EXPECT_EQ(total, 199);     // paper: "We discover 199 ASes"
  EXPECT_EQ(internap, 41);   // paper: "Internap operates at least 41 ASes"
  EXPECT_EQ(paper_cdn_profiles()[internap_profile_index()].name, "Internap");
}

// --- AsRegistry ------------------------------------------------------------------

TEST(AsRegistry, KeywordSpottingIsCaseInsensitive) {
  AsRegistry registry;
  registry.add(AsRecord{net::Asn(1), "AKAMAI-AS3 Akamai International",
                        AsCategory::kCdn, 0});
  registry.add(AsRecord{net::Asn(2), "NET-CEDAR Cedar Communications",
                        AsCategory::kIsp, 1});
  EXPECT_EQ(registry.search_holders("akamai").size(), 1u);
  EXPECT_EQ(registry.search_holders("AKAMAI").size(), 1u);
  EXPECT_TRUE(registry.search_holders("internap").empty());
  EXPECT_EQ(registry.count_in(AsCategory::kIsp), 1u);
  ASSERT_NE(registry.find(net::Asn(2)), nullptr);
  EXPECT_EQ(registry.find(net::Asn(2))->category, AsCategory::kIsp);
  EXPECT_EQ(registry.find(net::Asn(3)), nullptr);
}

// --- names ------------------------------------------------------------------------

TEST(Names, DomainsAreDeterministicAndUnique) {
  EXPECT_EQ(domain_name_for_rank(1, 5), domain_name_for_rank(1, 5));
  EXPECT_NE(domain_name_for_rank(1, 5), domain_name_for_rank(2, 5));
  std::set<std::string> names;
  for (std::uint64_t rank = 1; rank <= 2000; ++rank) {
    names.insert(domain_name_for_rank(7, rank));
  }
  EXPECT_EQ(names.size(), 2000u);  // rank digits guarantee uniqueness
}

TEST(Names, HolderNamesAvoidCdnKeywords) {
  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::string holder = holder_name(7, i, "NET", "Communications");
    for (const auto& profile : paper_cdn_profiles()) {
      EXPECT_FALSE(util::icontains(holder, profile.keyword))
          << holder << " contains " << profile.keyword;
    }
  }
}

// --- Ecosystem ---------------------------------------------------------------------

EcosystemConfig small_config() {
  EcosystemConfig config;
  config.domain_count = 3'000;
  config.isp_count = 300;
  config.hoster_count = 80;
  config.enterprise_count = 300;
  config.transit_count = 40;
  return config;
}

class EcosystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { eco_ = Ecosystem::generate(small_config()).release(); }
  static void TearDownTestSuite() {
    delete eco_;
    eco_ = nullptr;
  }
  static Ecosystem* eco_;
};

Ecosystem* EcosystemTest::eco_ = nullptr;

TEST_F(EcosystemTest, PopulationMatchesConfig) {
  const auto& registry = eco_->registry();
  EXPECT_EQ(registry.count_in(AsCategory::kIsp), 300u);
  EXPECT_EQ(registry.count_in(AsCategory::kHoster), 80u);
  EXPECT_EQ(registry.count_in(AsCategory::kCdn), 199u);
  EXPECT_EQ(eco_->domain_count(), 3'000u);
  EXPECT_EQ(eco_->trust_anchors().size(), 5u);
  EXPECT_EQ(eco_->repositories().size(), 5u);
}

TEST_F(EcosystemTest, PrefixOwnershipIsConsistent) {
  for (const auto& record : eco_->prefixes()) {
    EXPECT_LT(record.owner_as, eco_->registry().size());
    if (record.more_specific_id >= 0) {
      const auto& child =
          eco_->prefixes()[static_cast<std::size_t>(record.more_specific_id)];
      EXPECT_TRUE(record.prefix.contains(child.prefix));
      EXPECT_TRUE(child.is_more_specific);
    }
  }
}

TEST_F(EcosystemTest, AnnouncedPrefixesAreInTheRib) {
  std::size_t checked = 0;
  for (const auto& record : eco_->prefixes()) {
    if (!record.announced || checked >= 50) continue;
    ++checked;
    const auto origins = eco_->rib().origins_for(record.prefix);
    const net::Asn owner = eco_->registry().at(record.owner_as).asn;
    EXPECT_TRUE(origins.count(owner) == 1)
        << record.prefix.to_string() << " missing owner " << owner.to_string();
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(EcosystemTest, UnannouncedPrefixesAreNotInTheRib) {
  std::size_t unannounced = 0;
  for (const auto& record : eco_->prefixes()) {
    if (record.announced) continue;
    ++unannounced;
    EXPECT_TRUE(eco_->rib().origins_for(record.prefix).empty());
  }
  EXPECT_GT(unannounced, 0u);
}

TEST_F(EcosystemTest, MrtDumpParsesBackToSameTable) {
  const auto dump = eco_->mrt_dump();
  auto parsed = bgp::mrt::read_table_dump(dump);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().prefix_count(), eco_->rib().prefix_count());
  EXPECT_EQ(parsed.value().entry_count(), eco_->rib().entry_count());
  EXPECT_EQ(parsed.value().peers().size(), eco_->rib().peers().size());
}

TEST_F(EcosystemTest, CdnAsesCarryKeywords) {
  const auto& profiles = paper_cdn_profiles();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const auto spotted = eco_->registry().search_holders(profiles[p].keyword);
    EXPECT_EQ(spotted.size(), static_cast<std::size_t>(profiles[p].as_count))
        << profiles[p].name;
    EXPECT_EQ(eco_->cdn_as_indices(p).size(),
              static_cast<std::size_t>(profiles[p].as_count));
  }
}

TEST_F(EcosystemTest, DomainRanksAreMonotone) {
  std::uint32_t last = 0;
  for (std::size_t i = 0; i < eco_->domain_count(); ++i) {
    EXPECT_GT(eco_->plan(i).rank, last);
    last = eco_->plan(i).rank;
  }
  EXPECT_LE(last, eco_->config().rank_space);
}

TEST_F(EcosystemTest, CdnShareFallsWithRank) {
  std::size_t top_cdn = 0;
  std::size_t tail_cdn = 0;
  const std::size_t half = eco_->domain_count() / 2;
  for (std::size_t i = 0; i < eco_->domain_count(); ++i) {
    if (!eco_->domain_uses_cdn(i)) continue;
    (i < half ? top_cdn : tail_cdn)++;
  }
  EXPECT_GT(top_cdn, tail_cdn * 3 / 2);  // clear popularity skew
}

TEST_F(EcosystemTest, ZoneSourceServesPlannedDomains) {
  const dns::AuthoritativeServer server(&eco_->zone_source(Vantage::kBerlin));
  dns::StubResolver resolver(&server);

  std::size_t resolved = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto& plan = eco_->plan(i);
    if (plan.invalid_dns) continue;
    const auto name = dns::DnsName::parse(eco_->plan_name(i)).value();
    auto result = resolver.resolve(name.prepended("www"), dns::RecordType::kA);
    ASSERT_TRUE(result.ok()) << eco_->plan_name(i) << ": " << result.error().message;
    EXPECT_FALSE(result.value().addresses.empty()) << eco_->plan_name(i);
    EXPECT_EQ(result.value().cname_hops(), plan.www.chain_hops) << eco_->plan_name(i);
    ++resolved;
  }
  EXPECT_GT(resolved, 90u);
}

TEST_F(EcosystemTest, UnknownNamesGetNxDomain) {
  const dns::AuthoritativeServer server(&eco_->zone_source(Vantage::kBerlin));
  dns::StubResolver resolver(&server);
  auto result = resolver.resolve(dns::DnsName::parse("no-such-site.example").value(),
                                 dns::RecordType::kA);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rcode, dns::Rcode::kNxDomain);
}

TEST_F(EcosystemTest, VantagesReturnSameAddressSets) {
  const dns::AuthoritativeServer berlin(&eco_->zone_source(Vantage::kBerlin));
  const dns::AuthoritativeServer redwood(&eco_->zone_source(Vantage::kRedwoodCity));
  dns::StubResolver r1(&berlin);
  dns::StubResolver r2(&redwood);

  for (std::size_t i = 0; i < 50; ++i) {
    const auto& plan = eco_->plan(i);
    if (plan.invalid_dns) continue;
    const auto name = dns::DnsName::parse(eco_->plan_name(i)).value().prepended("www");
    auto a = r1.resolve(name, dns::RecordType::kA);
    auto b = r2.resolve(name, dns::RecordType::kA);
    ASSERT_TRUE(a.ok() && b.ok());
    std::multiset<std::string> sa;
    std::multiset<std::string> sb;
    for (const auto& addr : a.value().addresses) sa.insert(addr.to_string());
    for (const auto& addr : b.value().addresses) sb.insert(addr.to_string());
    EXPECT_EQ(sa, sb) << eco_->plan_name(i);
  }
}

TEST_F(EcosystemTest, ServerAddressesFallInsideAssignedPrefix) {
  for (std::size_t i = 0; i < 200; ++i) {
    const auto& plan = eco_->plan(i);
    if (plan.invalid_dns || plan.www.server_count == 0) continue;
    for (std::size_t s = 0; s < plan.www.server_count; ++s) {
      const auto addr = eco_->server_address(static_cast<std::uint32_t>(i), true, s);
      const auto& assigned = eco_->prefixes()[plan.www.prefix_ids[s]];
      EXPECT_TRUE(assigned.prefix.contains(addr))
          << eco_->plan_name(i) << " server " << s << " " << addr.to_string() << " not in "
          << assigned.prefix.to_string();
    }
  }
}

TEST_F(EcosystemTest, InternapIsTheOnlyCdnInTheRpki) {
  const rpki::RepositoryValidator validator(eco_->config().now);
  const auto report = validator.validate(eco_->repositories());
  ASSERT_FALSE(report.vrps.empty());

  std::set<std::uint32_t> cdn_asns;
  std::set<std::uint32_t> internap_asns;
  const auto& profiles = paper_cdn_profiles();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    for (const auto idx : eco_->cdn_as_indices(p)) {
      cdn_asns.insert(eco_->registry().at(idx).asn.value());
      if (p == internap_profile_index()) {
        internap_asns.insert(eco_->registry().at(idx).asn.value());
      }
    }
  }

  std::size_t cdn_vrps = 0;
  std::set<std::uint32_t> cdn_vrp_asns;
  for (const auto& vrp : report.vrps) {
    if (cdn_asns.count(vrp.asn.value()) != 0) {
      ++cdn_vrps;
      cdn_vrp_asns.insert(vrp.asn.value());
      EXPECT_TRUE(internap_asns.count(vrp.asn.value()) == 1);
    }
  }
  EXPECT_EQ(cdn_vrps, 4u);           // paper: "only four entries in the RPKI"
  EXPECT_EQ(cdn_vrp_asns.size(), 3u);  // "tied to three origin ASes"
}

TEST_F(EcosystemTest, ForgedChainNamesDoNotResolve) {
  const dns::AuthoritativeServer server(&eco_->zone_source(Vantage::kBerlin));
  dns::StubResolver resolver(&server);
  // Chain-node names are validated against the plan: wrong hop numbers,
  // wrong variant letters, or wrong suffixes must all be NXDOMAIN.
  for (const char* forged :
       {"d0-w-99.edgesuite.example", "d0-x-1.edgesuite.example",
        "d999999999-w-1.edgesuite.example", "d0-w-1.wrong-suffix.example"}) {
    auto result = resolver.resolve(dns::DnsName::parse(forged).value(),
                                   dns::RecordType::kA);
    ASSERT_TRUE(result.ok()) << forged;
    EXPECT_EQ(result.value().rcode, dns::Rcode::kNxDomain) << forged;
  }
}

TEST_F(EcosystemTest, DnskeyOnlyAtSignedApexes) {
  const dns::AuthoritativeServer server(&eco_->zone_source(Vantage::kBerlin));
  dns::StubResolver resolver(&server);
  // Note: a DNSKEY query for an aliased owner name legitimately yields the
  // CNAME record, so count only DNSKEY-type answers.
  const auto dnskey_count = [](const dns::Message& response) {
    std::size_t n = 0;
    for (const auto& rr : response.answers) {
      if (rr.type == dns::RecordType::kDnskey) ++n;
    }
    return n;
  };

  std::size_t signed_seen = 0;
  for (std::size_t i = 0; i < 400 && signed_seen < 5; ++i) {
    const auto& plan = eco_->plan(i);
    if (plan.invalid_dns) continue;
    const auto apex = dns::DnsName::parse(eco_->plan_name(i)).value();
    auto apex_answer = resolver.query(apex, dns::RecordType::kDnskey);
    ASSERT_TRUE(apex_answer.ok());
    const bool has_key = dnskey_count(apex_answer.value()) > 0;
    EXPECT_EQ(has_key, plan.dnssec_signed) << eco_->plan_name(i);
    if (has_key) ++signed_seen;
    // www.<apex> never carries the zone key.
    auto www_answer = resolver.query(apex.prepended("www"),
                                     dns::RecordType::kDnskey);
    ASSERT_TRUE(www_answer.ok());
    EXPECT_EQ(dnskey_count(www_answer.value()), 0u) << eco_->plan_name(i);
  }
}

TEST_F(EcosystemTest, TalsMatchTrustAnchors) {
  const auto tals = eco_->tals();
  ASSERT_EQ(tals.size(), 5u);
  for (std::size_t i = 0; i < tals.size(); ++i) {
    EXPECT_TRUE(rpki::ta_matches_tal(eco_->repositories()[i].ta_cert, tals[i]));
    // Cross-anchor keys must not match.
    EXPECT_FALSE(
        rpki::ta_matches_tal(eco_->repositories()[(i + 1) % 5].ta_cert, tals[i]));
  }
}

TEST_F(EcosystemTest, CdnDomainsHonourThirdPartyScaleDefault) {
  // With the default scale, some CDN-variant servers sit in ISP space.
  std::size_t third_party = 0;
  std::size_t cdn_servers = 0;
  for (std::size_t i = 0; i < eco_->domain_count(); ++i) {
    const auto& plan = eco_->plan(i);
    if (plan.cdn_id == kNoCdn || !plan.www.on_cdn) continue;
    for (std::uint8_t s = 0; s < plan.www.server_count; ++s) {
      const auto& record = eco_->prefixes()[plan.www.prefix_ids[s]];
      const auto category = eco_->registry().at(record.owner_as).category;
      ++cdn_servers;
      if (category == AsCategory::kIsp) ++third_party;
    }
  }
  ASSERT_GT(cdn_servers, 100u);
  // Placement fractions are 2-10%: expect some but a clear minority.
  EXPECT_GT(third_party, 0u);
  EXPECT_LT(third_party, cdn_servers / 4);
}

TEST(Ecosystem, GenerationIsDeterministic) {
  const auto a = Ecosystem::generate(small_config());
  const auto b = Ecosystem::generate(small_config());
  ASSERT_EQ(a->domain_count(), b->domain_count());
  ASSERT_EQ(a->prefixes().size(), b->prefixes().size());
  for (std::size_t i = 0; i < a->domain_count(); i += 37) {
    EXPECT_EQ(a->plan_name(i), b->plan_name(i));
    EXPECT_EQ(a->plan(i).cdn_id, b->plan(i).cdn_id);
    EXPECT_EQ(a->plan(i).www.prefix_ids, b->plan(i).www.prefix_ids);
  }
  for (std::size_t i = 0; i < a->prefixes().size(); i += 101) {
    EXPECT_EQ(a->prefixes()[i].prefix, b->prefixes()[i].prefix);
  }
}

TEST(Ecosystem, SeedChangesWorld) {
  auto config = small_config();
  const auto a = Ecosystem::generate(config);
  config.seed = 777;
  const auto b = Ecosystem::generate(config);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a->domain_count(); i += 13) {
    if (a->plan_name(i) != b->plan_name(i)) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

}  // namespace
}  // namespace ripki::web
