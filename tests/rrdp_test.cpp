// Tests for the relying-party fetch plane: the XML codec, repository
// publication/assembly, RRDP synchronisation, and rsync-style trees.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "encoding/xml.hpp"
#include "rpki/fs_publication.hpp"
#include "rpki/rrdp.hpp"
#include "rpki/validator.hpp"
#include "util/prng.hpp"

namespace ripki {
namespace {

using encoding::XmlElement;

// --- XML codec ---------------------------------------------------------------

TEST(Xml, RoundTripWithAttributesAndChildren) {
  XmlElement root;
  root.name = "notification";
  root.attributes.emplace_back("session_id", "abc-123");
  root.attributes.emplace_back("serial", "42");
  XmlElement snapshot;
  snapshot.name = "snapshot";
  snapshot.attributes.emplace_back("uri", "https://x/снap.xml");
  root.children.push_back(snapshot);
  XmlElement publish;
  publish.name = "publish";
  publish.text = "QUJD";
  root.children.push_back(publish);

  const std::string text = encoding::xml_encode(root);
  auto parsed = encoding::xml_parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().name, "notification");
  EXPECT_EQ(*parsed.value().attribute("serial"), "42");
  ASSERT_NE(parsed.value().child("snapshot"), nullptr);
  ASSERT_EQ(parsed.value().children_named("publish").size(), 1u);
  // Text survives modulo surrounding whitespace.
  EXPECT_NE(parsed.value().children_named("publish")[0]->text.find("QUJD"),
            std::string::npos);
}

TEST(Xml, EscapesEntities) {
  XmlElement root;
  root.name = "e";
  root.attributes.emplace_back("a", "x<y&\"z'");
  root.text = "1<2 & 3>2";
  const std::string text = encoding::xml_encode(root);
  // No raw '<' or '&' may appear between the start tag and the end tag.
  const std::size_t content_start = text.find('>', text.find("<e")) + 1;
  const std::size_t content_end = text.find("</e>");
  ASSERT_NE(content_end, std::string::npos);
  for (std::size_t i = content_start; i < content_end; ++i) {
    EXPECT_NE(text[i], '<') << "raw '<' at " << i;
    if (text[i] == '&') {
      EXPECT_NE(text.find(';', i), std::string::npos);  // entity, not raw
    }
  }
  auto parsed = encoding::xml_parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed.value().attribute("a"), "x<y&\"z'");
  EXPECT_EQ(parsed.value().text, "1<2 & 3>2");
}

TEST(Xml, ParsesSelfClosingAndDeclaration) {
  auto parsed = encoding::xml_parse(
      "<?xml version=\"1.0\"?>\n<delta serial=\"7\"><withdraw uri=\"u\" "
      "hash=\"h\"/></delta>");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed.value().children.size(), 1u);
  EXPECT_EQ(parsed.value().children[0].name, "withdraw");
  EXPECT_EQ(*parsed.value().children[0].attribute("hash"), "h");
}

TEST(Xml, RejectsMalformed) {
  EXPECT_FALSE(encoding::xml_parse("").ok());
  EXPECT_FALSE(encoding::xml_parse("<a>").ok());                 // unterminated
  EXPECT_FALSE(encoding::xml_parse("<a></b>").ok());             // mismatched
  EXPECT_FALSE(encoding::xml_parse("<a x=y/>").ok());            // unquoted attr
  EXPECT_FALSE(encoding::xml_parse("<a/><b/>").ok());            // two roots
  EXPECT_FALSE(encoding::xml_parse("<a>&unknown;</a>").ok());    // bad entity
  EXPECT_FALSE(encoding::xml_parse("<a><!-- c --></a>").ok());   // comments
}

// --- publication --------------------------------------------------------------

class PublicationFixture : public ::testing::Test {
 protected:
  PublicationFixture() : prng_(77) {
    anchor_ = rpki::make_trust_anchor(
        "RIPE", rpki::ResourceSet({net::Prefix::parse("62.0.0.0/8").value()}),
        rpki::ValidityWindow{rpki::kDefaultNow - 30 * rpki::kSecondsPerDay,
                             rpki::kDefaultNow + 300 * rpki::kSecondsPerDay},
        prng_);
  }

  rpki::Repository build_repo(int roas_in_second_point) {
    rpki::RepositoryBuilder builder(anchor_, rpki::kDefaultNow, prng_);
    const auto a = builder.add_ca(
        "Org A", rpki::ResourceSet({net::Prefix::parse("62.1.0.0/16").value()}));
    rpki::RoaContent content;
    content.asn = net::Asn(64512);
    content.prefixes = {
        rpki::RoaPrefix{net::Prefix::parse("62.1.0.0/16").value(), 20}};
    builder.add_roa(a, content);

    const auto b = builder.add_ca(
        "Org B", rpki::ResourceSet({net::Prefix::parse("62.2.0.0/16").value()}));
    for (int i = 0; i < roas_in_second_point; ++i) {
      rpki::RoaContent extra;
      extra.asn = net::Asn(64600 + static_cast<std::uint32_t>(i));
      extra.prefixes = {
          rpki::RoaPrefix{net::Prefix::parse("62.2.0.0/16").value(),
                          static_cast<std::uint8_t>(17 + i)}};
      builder.add_roa(b, extra);
    }
    return builder.build();
  }

  std::size_t vrps_of(const rpki::Repository& repo) {
    rpki::ValidationReport report;
    rpki::RepositoryValidator(rpki::kDefaultNow).validate_into(repo, report);
    return report.vrps.size();
  }

  util::Prng prng_;
  rpki::TrustAnchor anchor_;
};

TEST_F(PublicationFixture, PublishAssembleRoundTripValidatesIdentically) {
  const auto repo = build_repo(2);
  const auto objects = rpki::publish_repository(repo);
  // ta.cer + ta.crl + 2x(ca.cer + crl + mft) + 3 roas
  EXPECT_EQ(objects.size(), 2u + 2 * 3u + 3u);

  auto assembled = rpki::assemble_repository(objects);
  ASSERT_TRUE(assembled.ok()) << assembled.error().message;
  EXPECT_EQ(assembled.value().points.size(), 2u);
  EXPECT_EQ(vrps_of(assembled.value()), vrps_of(repo));
  EXPECT_EQ(vrps_of(assembled.value()), 3u);
}

TEST_F(PublicationFixture, AssembleRejectsMissingObjects) {
  const auto repo = build_repo(1);
  auto objects = rpki::publish_repository(repo);
  // Drop the TA certificate.
  objects.erase(objects.begin());
  EXPECT_FALSE(rpki::assemble_repository(objects).ok());
}

TEST_F(PublicationFixture, AssembleRejectsUnknownFileTypes) {
  const auto repo = build_repo(1);
  auto objects = rpki::publish_repository(repo);
  objects.push_back({"rsync://rpki.ripe.example/repo/0/evil.bin", {1, 2, 3}});
  EXPECT_FALSE(rpki::assemble_repository(objects).ok());
}

TEST_F(PublicationFixture, BaseUriNamesTheAnchor) {
  const auto repo = build_repo(1);
  EXPECT_EQ(rpki::repository_base_uri(repo), "rsync://rpki.ripe.example/repo");
}

// --- RRDP -----------------------------------------------------------------------

TEST_F(PublicationFixture, RrdpSnapshotBootstrap) {
  const auto repo = build_repo(2);
  rpki::RrdpServer server("session-1", repo);
  rpki::RrdpClient client;
  auto r = client.sync(server);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_TRUE(client.synchronized());
  EXPECT_EQ(client.serial(), 1u);
  EXPECT_EQ(client.stats().snapshots_fetched, 1u);
  EXPECT_EQ(client.stats().deltas_applied, 0u);

  auto assembled = client.assemble();
  ASSERT_TRUE(assembled.ok()) << assembled.error().message;
  EXPECT_EQ(vrps_of(assembled.value()), 3u);
}

TEST_F(PublicationFixture, RrdpIncrementalDelta) {
  rpki::RrdpServer server("session-1", build_repo(1));
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_EQ(vrps_of(client.assemble().value()), 2u);

  // Publish an updated repository with one more ROA.
  server.update(build_repo(2));
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_EQ(client.serial(), 2u);
  EXPECT_EQ(client.stats().snapshots_fetched, 1u);  // no re-bootstrap
  EXPECT_EQ(client.stats().deltas_applied, 1u);
  EXPECT_EQ(vrps_of(client.assemble().value()), 3u);
}

TEST_F(PublicationFixture, RrdpDeltaWithdrawals) {
  rpki::RrdpServer server("session-1", build_repo(3));
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_EQ(vrps_of(client.assemble().value()), 4u);

  server.update(build_repo(1));  // shrinks: withdraws two ROAs (and churn)
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_GT(client.stats().objects_withdrawn, 0u);
  EXPECT_EQ(vrps_of(client.assemble().value()), 2u);
}

TEST_F(PublicationFixture, RrdpSyncIsIdempotent) {
  rpki::RrdpServer server("session-1", build_repo(1));
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());
  const auto stats_before = client.stats();
  ASSERT_TRUE(client.sync(server).ok());  // nothing new
  EXPECT_EQ(client.stats().snapshots_fetched, stats_before.snapshots_fetched);
  EXPECT_EQ(client.stats().deltas_applied, stats_before.deltas_applied);
}

TEST_F(PublicationFixture, RrdpFallsBackToSnapshotWhenDeltasAgeOut) {
  rpki::RrdpServer server("session-1", build_repo(1), /*delta_window=*/1);
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());

  server.update(build_repo(2));
  server.update(build_repo(3));  // the serial-2 delta ages out
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_EQ(client.serial(), 3u);
  EXPECT_EQ(client.stats().snapshots_fetched, 2u);  // re-bootstrap
  EXPECT_EQ(vrps_of(client.assemble().value()), 4u);
}

TEST_F(PublicationFixture, RrdpSessionChangeForcesSnapshot) {
  rpki::RrdpClient client;
  {
    rpki::RrdpServer server("session-1", build_repo(1));
    ASSERT_TRUE(client.sync(server).ok());
  }
  rpki::RrdpServer reborn("session-2", build_repo(2));
  reborn.update(build_repo(2));  // serial 2, but a different session
  ASSERT_TRUE(client.sync(reborn).ok());
  EXPECT_EQ(client.session_id(), "session-2");
  EXPECT_EQ(client.stats().snapshots_fetched, 2u);
  EXPECT_EQ(vrps_of(client.assemble().value()), 3u);
}

TEST_F(PublicationFixture, RrdpDocumentsAreRealXml) {
  rpki::RrdpServer server("session-1", build_repo(1));
  auto notification = encoding::xml_parse(server.notification_xml());
  ASSERT_TRUE(notification.ok());
  EXPECT_EQ(notification.value().name, "notification");
  ASSERT_NE(notification.value().child("snapshot"), nullptr);
  EXPECT_NE(notification.value().child("snapshot")->attribute("hash"), nullptr);

  auto snapshot = encoding::xml_parse(server.snapshot_xml());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(snapshot.value().children_named("publish").empty());
}

// --- fs publication ---------------------------------------------------------------

TEST_F(PublicationFixture, FilesystemTreeRoundTrip) {
  const auto repo = build_repo(2);
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "ripki-fs-pub-test";
  std::filesystem::remove_all(root);

  auto written = rpki::write_repository_tree(repo, root);
  ASSERT_TRUE(written.ok()) << written.error().message;
  EXPECT_TRUE(std::filesystem::exists(root / "ta.cer"));
  EXPECT_TRUE(std::filesystem::exists(root / "0" / "manifest.mft"));

  auto loaded = rpki::read_repository_tree(root);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().points.size(), 2u);
  EXPECT_EQ(vrps_of(loaded.value()), vrps_of(repo));

  std::filesystem::remove_all(root);
}

TEST_F(PublicationFixture, FilesystemRejectsForeignFiles) {
  const auto repo = build_repo(1);
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "ripki-fs-pub-bad";
  std::filesystem::remove_all(root);
  ASSERT_TRUE(rpki::write_repository_tree(repo, root).ok());
  std::ofstream(root / "0" / "README.txt") << "not an rpki object";
  EXPECT_FALSE(rpki::read_repository_tree(root).ok());
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace ripki
