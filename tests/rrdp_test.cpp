// Tests for the relying-party fetch plane: the XML codec, repository
// publication/assembly, RRDP synchronisation, and rsync-style trees.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "crypto/sha256.hpp"
#include "encoding/xml.hpp"
#include "rpki/fs_publication.hpp"
#include "rpki/rrdp.hpp"
#include "rpki/tal.hpp"
#include "rpki/validator.hpp"
#include "util/prng.hpp"

namespace ripki {
namespace {

using encoding::XmlElement;

// --- XML codec ---------------------------------------------------------------

TEST(Xml, RoundTripWithAttributesAndChildren) {
  XmlElement root;
  root.name = "notification";
  root.attributes.emplace_back("session_id", "abc-123");
  root.attributes.emplace_back("serial", "42");
  XmlElement snapshot;
  snapshot.name = "snapshot";
  snapshot.attributes.emplace_back("uri", "https://x/снap.xml");
  root.children.push_back(snapshot);
  XmlElement publish;
  publish.name = "publish";
  publish.text = "QUJD";
  root.children.push_back(publish);

  const std::string text = encoding::xml_encode(root);
  auto parsed = encoding::xml_parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().name, "notification");
  EXPECT_EQ(*parsed.value().attribute("serial"), "42");
  ASSERT_NE(parsed.value().child("snapshot"), nullptr);
  ASSERT_EQ(parsed.value().children_named("publish").size(), 1u);
  // Text survives modulo surrounding whitespace.
  EXPECT_NE(parsed.value().children_named("publish")[0]->text.find("QUJD"),
            std::string::npos);
}

TEST(Xml, EscapesEntities) {
  XmlElement root;
  root.name = "e";
  root.attributes.emplace_back("a", "x<y&\"z'");
  root.text = "1<2 & 3>2";
  const std::string text = encoding::xml_encode(root);
  // No raw '<' or '&' may appear between the start tag and the end tag.
  const std::size_t content_start = text.find('>', text.find("<e")) + 1;
  const std::size_t content_end = text.find("</e>");
  ASSERT_NE(content_end, std::string::npos);
  for (std::size_t i = content_start; i < content_end; ++i) {
    EXPECT_NE(text[i], '<') << "raw '<' at " << i;
    if (text[i] == '&') {
      EXPECT_NE(text.find(';', i), std::string::npos);  // entity, not raw
    }
  }
  auto parsed = encoding::xml_parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed.value().attribute("a"), "x<y&\"z'");
  EXPECT_EQ(parsed.value().text, "1<2 & 3>2");
}

TEST(Xml, ParsesSelfClosingAndDeclaration) {
  auto parsed = encoding::xml_parse(
      "<?xml version=\"1.0\"?>\n<delta serial=\"7\"><withdraw uri=\"u\" "
      "hash=\"h\"/></delta>");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed.value().children.size(), 1u);
  EXPECT_EQ(parsed.value().children[0].name, "withdraw");
  EXPECT_EQ(*parsed.value().children[0].attribute("hash"), "h");
}

TEST(Xml, RejectsMalformed) {
  EXPECT_FALSE(encoding::xml_parse("").ok());
  EXPECT_FALSE(encoding::xml_parse("<a>").ok());                 // unterminated
  EXPECT_FALSE(encoding::xml_parse("<a></b>").ok());             // mismatched
  EXPECT_FALSE(encoding::xml_parse("<a x=y/>").ok());            // unquoted attr
  EXPECT_FALSE(encoding::xml_parse("<a/><b/>").ok());            // two roots
  EXPECT_FALSE(encoding::xml_parse("<a>&unknown;</a>").ok());    // bad entity
  EXPECT_FALSE(encoding::xml_parse("<a><!-- c --></a>").ok());   // comments
}

// --- publication --------------------------------------------------------------

class PublicationFixture : public ::testing::Test {
 protected:
  PublicationFixture() : prng_(77) {
    anchor_ = rpki::make_trust_anchor(
        "RIPE", rpki::ResourceSet({net::Prefix::parse("62.0.0.0/8").value()}),
        rpki::ValidityWindow{rpki::kDefaultNow - 30 * rpki::kSecondsPerDay,
                             rpki::kDefaultNow + 300 * rpki::kSecondsPerDay},
        prng_);
  }

  rpki::Repository build_repo(int roas_in_second_point) {
    rpki::RepositoryBuilder builder(anchor_, rpki::kDefaultNow, prng_);
    const auto a = builder.add_ca(
        "Org A", rpki::ResourceSet({net::Prefix::parse("62.1.0.0/16").value()}));
    rpki::RoaContent content;
    content.asn = net::Asn(64512);
    content.prefixes = {
        rpki::RoaPrefix{net::Prefix::parse("62.1.0.0/16").value(), 20}};
    builder.add_roa(a, content);

    const auto b = builder.add_ca(
        "Org B", rpki::ResourceSet({net::Prefix::parse("62.2.0.0/16").value()}));
    for (int i = 0; i < roas_in_second_point; ++i) {
      rpki::RoaContent extra;
      extra.asn = net::Asn(64600 + static_cast<std::uint32_t>(i));
      extra.prefixes = {
          rpki::RoaPrefix{net::Prefix::parse("62.2.0.0/16").value(),
                          static_cast<std::uint8_t>(17 + i)}};
      builder.add_roa(b, extra);
    }
    return builder.build();
  }

  std::size_t vrps_of(const rpki::Repository& repo) {
    rpki::ValidationReport report;
    rpki::RepositoryValidator(rpki::kDefaultNow).validate_into(repo, report);
    return report.vrps.size();
  }

  util::Prng prng_;
  rpki::TrustAnchor anchor_;
};

TEST_F(PublicationFixture, PublishAssembleRoundTripValidatesIdentically) {
  const auto repo = build_repo(2);
  const auto objects = rpki::publish_repository(repo);
  // ta.cer + ta.crl + 2x(ca.cer + crl + mft) + 3 roas
  EXPECT_EQ(objects.size(), 2u + 2 * 3u + 3u);

  auto assembled = rpki::assemble_repository(objects);
  ASSERT_TRUE(assembled.ok()) << assembled.error().message;
  EXPECT_EQ(assembled.value().points.size(), 2u);
  EXPECT_EQ(vrps_of(assembled.value()), vrps_of(repo));
  EXPECT_EQ(vrps_of(assembled.value()), 3u);
}

TEST_F(PublicationFixture, AssembleRejectsMissingObjects) {
  const auto repo = build_repo(1);
  auto objects = rpki::publish_repository(repo);
  // Drop the TA certificate.
  objects.erase(objects.begin());
  EXPECT_FALSE(rpki::assemble_repository(objects).ok());
}

TEST_F(PublicationFixture, AssembleRejectsUnknownFileTypes) {
  const auto repo = build_repo(1);
  auto objects = rpki::publish_repository(repo);
  objects.push_back({"rsync://rpki.ripe.example/repo/0/evil.bin", {1, 2, 3}});
  EXPECT_FALSE(rpki::assemble_repository(objects).ok());
}

TEST_F(PublicationFixture, BaseUriNamesTheAnchor) {
  const auto repo = build_repo(1);
  EXPECT_EQ(rpki::repository_base_uri(repo), "rsync://rpki.ripe.example/repo");
}

// --- RRDP -----------------------------------------------------------------------

TEST_F(PublicationFixture, RrdpSnapshotBootstrap) {
  const auto repo = build_repo(2);
  rpki::RrdpServer server("session-1", repo);
  rpki::RrdpClient client;
  auto r = client.sync(server);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_TRUE(client.synchronized());
  EXPECT_EQ(client.serial(), 1u);
  EXPECT_EQ(client.stats().snapshots_fetched, 1u);
  EXPECT_EQ(client.stats().deltas_applied, 0u);

  auto assembled = client.assemble();
  ASSERT_TRUE(assembled.ok()) << assembled.error().message;
  EXPECT_EQ(vrps_of(assembled.value()), 3u);
}

TEST_F(PublicationFixture, RrdpIncrementalDelta) {
  rpki::RrdpServer server("session-1", build_repo(1));
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_EQ(vrps_of(client.assemble().value()), 2u);

  // Publish an updated repository with one more ROA.
  server.update(build_repo(2));
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_EQ(client.serial(), 2u);
  EXPECT_EQ(client.stats().snapshots_fetched, 1u);  // no re-bootstrap
  EXPECT_EQ(client.stats().deltas_applied, 1u);
  EXPECT_EQ(vrps_of(client.assemble().value()), 3u);
}

TEST_F(PublicationFixture, RrdpDeltaWithdrawals) {
  rpki::RrdpServer server("session-1", build_repo(3));
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_EQ(vrps_of(client.assemble().value()), 4u);

  server.update(build_repo(1));  // shrinks: withdraws two ROAs (and churn)
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_GT(client.stats().objects_withdrawn, 0u);
  EXPECT_EQ(vrps_of(client.assemble().value()), 2u);
}

TEST_F(PublicationFixture, RrdpSyncIsIdempotent) {
  rpki::RrdpServer server("session-1", build_repo(1));
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());
  const auto stats_before = client.stats();
  ASSERT_TRUE(client.sync(server).ok());  // nothing new
  EXPECT_EQ(client.stats().snapshots_fetched, stats_before.snapshots_fetched);
  EXPECT_EQ(client.stats().deltas_applied, stats_before.deltas_applied);
}

TEST_F(PublicationFixture, RrdpFallsBackToSnapshotWhenDeltasAgeOut) {
  rpki::RrdpServer server("session-1", build_repo(1), /*delta_window=*/1);
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());

  server.update(build_repo(2));
  server.update(build_repo(3));  // the serial-2 delta ages out
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_EQ(client.serial(), 3u);
  EXPECT_EQ(client.stats().snapshots_fetched, 2u);  // re-bootstrap
  EXPECT_EQ(vrps_of(client.assemble().value()), 4u);
}

TEST_F(PublicationFixture, RrdpSessionChangeForcesSnapshot) {
  rpki::RrdpClient client;
  {
    rpki::RrdpServer server("session-1", build_repo(1));
    ASSERT_TRUE(client.sync(server).ok());
  }
  rpki::RrdpServer reborn("session-2", build_repo(2));
  reborn.update(build_repo(2));  // serial 2, but a different session
  ASSERT_TRUE(client.sync(reborn).ok());
  EXPECT_EQ(client.session_id(), "session-2");
  EXPECT_EQ(client.stats().snapshots_fetched, 2u);
  EXPECT_EQ(vrps_of(client.assemble().value()), 3u);
}

TEST_F(PublicationFixture, RrdpDocumentsAreRealXml) {
  rpki::RrdpServer server("session-1", build_repo(1));
  auto notification = encoding::xml_parse(server.notification_xml());
  ASSERT_TRUE(notification.ok());
  EXPECT_EQ(notification.value().name, "notification");
  ASSERT_NE(notification.value().child("snapshot"), nullptr);
  EXPECT_NE(notification.value().child("snapshot")->attribute("hash"), nullptr);

  auto snapshot = encoding::xml_parse(server.snapshot_xml());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(snapshot.value().children_named("publish").empty());
}

// --- Delta-chain enforcement -------------------------------------------------
//
// The document-level entry point (apply_delta_xml) lets these exercise the
// serial chain without a cooperating server: a delta is only applicable to
// the exact state it was computed against.

namespace {

/// Hand-built RFC 8182 delta document with one publish element.
std::string delta_doc(const std::string& session, std::uint64_t serial,
                      const std::vector<XmlElement>& children) {
  XmlElement root;
  root.name = "delta";
  root.attributes.emplace_back("xmlns", "http://www.ripe.net/rpki/rrdp");
  root.attributes.emplace_back("version", "1");
  root.attributes.emplace_back("session_id", session);
  root.attributes.emplace_back("serial", std::to_string(serial));
  root.children = children;
  return encoding::xml_encode(root);
}

XmlElement publish_el(const std::string& uri, const util::Bytes& data) {
  XmlElement el;
  el.name = "publish";
  el.attributes.emplace_back("uri", uri);
  el.text = rpki::base64_encode(data);
  return el;
}

XmlElement withdraw_el(const std::string& uri, const util::Bytes& data) {
  XmlElement el;
  el.name = "withdraw";
  el.attributes.emplace_back("uri", uri);
  el.attributes.emplace_back("hash",
                             crypto::digest_hex(crypto::sha256(data)));
  return el;
}

}  // namespace

TEST_F(PublicationFixture, RrdpOutOfOrderDeltaRejected) {
  rpki::RrdpServer server("session-1", build_repo(1));
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());
  ASSERT_EQ(client.serial(), 1u);

  const auto objects = rpki::publish_repository(build_repo(1));
  const auto& any = objects.front();

  // Skipping ahead (serial 3 against a serial-1 mirror) must be rejected.
  auto skipped = client.apply_delta_xml(
      delta_doc("session-1", 3, {publish_el(any.uri, any.data)}));
  ASSERT_FALSE(skipped.ok());
  EXPECT_NE(skipped.error().message.find("out-of-order"), std::string::npos);

  // Replaying an old serial must be rejected too.
  auto replayed = client.apply_delta_xml(
      delta_doc("session-1", 1, {publish_el(any.uri, any.data)}));
  EXPECT_FALSE(replayed.ok());

  // A delta without a serial attribute is malformed.
  std::string no_serial = delta_doc("session-1", 2, {});
  const auto pos = no_serial.find(" serial=\"2\"");
  ASSERT_NE(pos, std::string::npos);
  no_serial.erase(pos, std::string(" serial=\"2\"").size());
  EXPECT_FALSE(client.apply_delta_xml(no_serial).ok());

  // The mirror is untouched: the exact-next serial still applies cleanly.
  auto next = client.apply_delta_xml(
      delta_doc("session-1", 2, {publish_el(any.uri, any.data)}));
  ASSERT_TRUE(next.ok()) << next.error().message;
  EXPECT_EQ(client.serial(), 2u);
}

TEST_F(PublicationFixture, RrdpDeltaBeforeBootstrapRejected) {
  rpki::RrdpClient client;
  const auto objects = rpki::publish_repository(build_repo(1));
  auto r = client.apply_delta_xml(delta_doc(
      "session-1", 1, {publish_el(objects.front().uri, objects.front().data)}));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("before snapshot"), std::string::npos);
}

TEST_F(PublicationFixture, RrdpWithdrawThenPublishSameUriIsDeterministic) {
  // One delta that withdraws an object and republishes the same URI with
  // new bytes: elements apply in document order, so the object must end
  // up present with the new content — and the reversed order (publish
  // first, then a withdraw whose hash names the *old* bytes) must fail
  // the RFC 8182 §3.5 hash check instead of silently dropping the new
  // object.
  rpki::RrdpServer server("session-1", build_repo(1));
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());

  auto objects = client.objects();
  ASSERT_FALSE(objects.empty());
  const std::string uri = objects.front().uri;
  const util::Bytes old_bytes = objects.front().data;
  util::Bytes new_bytes = old_bytes;
  new_bytes.push_back(0x5a);

  auto applied = client.apply_delta_xml(delta_doc(
      "session-1", 2,
      {withdraw_el(uri, old_bytes), publish_el(uri, new_bytes)}));
  ASSERT_TRUE(applied.ok()) << applied.error().message;
  EXPECT_EQ(client.serial(), 2u);
  bool found = false;
  for (const auto& object : client.objects()) {
    if (object.uri != uri) continue;
    found = true;
    EXPECT_EQ(object.data, new_bytes);
  }
  EXPECT_TRUE(found);

  // Publish-then-withdraw with the stale hash: rejected (the withdraw no
  // longer names the bytes at that URI), not applied half-way silently.
  auto reversed = client.apply_delta_xml(delta_doc(
      "session-1", 3,
      {publish_el(uri, old_bytes), withdraw_el(uri, new_bytes)}));
  ASSERT_FALSE(reversed.ok());
  EXPECT_NE(reversed.error().message.find("hash mismatch"), std::string::npos);
}

TEST_F(PublicationFixture, RrdpGapInDeltaChainForcesSnapshotFallback) {
  // Same shape as the age-out test but asserting the *chain* property
  // directly: with the serial-2 delta gone from the window, the client
  // cannot step 1 -> 3 by deltas and must re-bootstrap from the snapshot,
  // ending byte-identical to the server's object set.
  rpki::RrdpServer server("session-1", build_repo(1), /*delta_window=*/1);
  rpki::RrdpClient client;
  ASSERT_TRUE(client.sync(server).ok());
  const auto deltas_before = client.stats().deltas_applied;

  server.update(build_repo(2));
  server.update(build_repo(3));  // delta for serial 2 aged out: gap
  ASSERT_TRUE(client.sync(server).ok());
  EXPECT_EQ(client.serial(), 3u);
  EXPECT_EQ(client.stats().deltas_applied, deltas_before);  // no delta used
  EXPECT_EQ(client.stats().snapshots_fetched, 2u);
  EXPECT_EQ(vrps_of(client.assemble().value()), 4u);
}

// --- fs publication ---------------------------------------------------------------

TEST_F(PublicationFixture, FilesystemTreeRoundTrip) {
  const auto repo = build_repo(2);
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "ripki-fs-pub-test";
  std::filesystem::remove_all(root);

  auto written = rpki::write_repository_tree(repo, root);
  ASSERT_TRUE(written.ok()) << written.error().message;
  EXPECT_TRUE(std::filesystem::exists(root / "ta.cer"));
  EXPECT_TRUE(std::filesystem::exists(root / "0" / "manifest.mft"));

  auto loaded = rpki::read_repository_tree(root);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().points.size(), 2u);
  EXPECT_EQ(vrps_of(loaded.value()), vrps_of(repo));

  std::filesystem::remove_all(root);
}

TEST_F(PublicationFixture, FilesystemRejectsForeignFiles) {
  const auto repo = build_repo(1);
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "ripki-fs-pub-bad";
  std::filesystem::remove_all(root);
  ASSERT_TRUE(rpki::write_repository_tree(repo, root).ok());
  std::ofstream(root / "0" / "README.txt") << "not an rpki object";
  EXPECT_FALSE(rpki::read_repository_tree(root).ok());
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace ripki
