#include <gtest/gtest.h>

#include "rtr/cache.hpp"
#include "rtr/client.hpp"
#include "rtr/pdu.hpp"

namespace ripki::rtr {
namespace {

net::Prefix P(const std::string& text) { return net::Prefix::parse(text).value(); }

rpki::Vrp V(const std::string& prefix, std::uint8_t maxlen, std::uint32_t asn) {
  return rpki::Vrp{P(prefix), maxlen, net::Asn(asn)};
}

// --- PDU codec ----------------------------------------------------------------

class PduRoundTrip : public ::testing::TestWithParam<Pdu> {};

TEST_P(PduRoundTrip, EncodeDecodeIdentity) {
  const Pdu original = GetParam();
  const util::Bytes bytes = encode(original);
  util::ByteReader reader(bytes);
  auto decoded = decode(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value(), original);
  EXPECT_EQ(reader.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, PduRoundTrip,
    ::testing::Values(
        Pdu{SerialNotify{7, 42}}, Pdu{SerialQuery{7, 41}}, Pdu{ResetQuery{}},
        Pdu{CacheResponse{7}},
        Pdu{PrefixPdu{true, net::Prefix::parse("10.0.0.0/16").value(), 24,
                      net::Asn(65001)}},
        Pdu{PrefixPdu{false, net::Prefix::parse("2a00:1450::/32").value(), 48,
                      net::Asn(15169)}},
        Pdu{EndOfData{7, 42}}, Pdu{CacheReset{}},
        Pdu{ErrorReport{ErrorCode::kCorruptData, {1, 2, 3}, "bad pdu"}}));

TEST(Pdu, WireLayoutIpv4Prefix) {
  const Pdu pdu{PrefixPdu{true, P("10.0.0.0/16"), 24, net::Asn(65001)}};
  const util::Bytes bytes = encode(pdu);
  ASSERT_EQ(bytes.size(), 20u);
  EXPECT_EQ(bytes[0], 0);   // version
  EXPECT_EQ(bytes[1], 4);   // IPv4 prefix type
  EXPECT_EQ(bytes[7], 20);  // total length
  EXPECT_EQ(bytes[8], 1);   // flags: announce
  EXPECT_EQ(bytes[9], 16);  // prefix length
  EXPECT_EQ(bytes[10], 24); // max length
  EXPECT_EQ(bytes[12], 10); // first address byte
}

TEST(Pdu, DecodeRejectsBadVersion) {
  util::Bytes bytes = encode(Pdu{ResetQuery{}});
  bytes[0] = 9;  // beyond kMaxSupportedVersion
  util::ByteReader reader(bytes);
  EXPECT_FALSE(decode(reader).ok());
}

TEST(Pdu, DecodeRejectsUnknownType) {
  util::Bytes bytes = encode(Pdu{ResetQuery{}});
  bytes[1] = 99;
  util::ByteReader reader(bytes);
  EXPECT_FALSE(decode(reader).ok());
}

TEST(Pdu, DecodeRejectsTruncatedBody) {
  util::Bytes bytes = encode(Pdu{SerialNotify{1, 2}});
  bytes.pop_back();
  util::ByteReader reader(bytes);
  EXPECT_FALSE(decode(reader).ok());
}

TEST(Pdu, DecodeRejectsBadLengthField) {
  util::Bytes bytes = encode(Pdu{ResetQuery{}});
  bytes[7] = 4;  // below header size
  util::ByteReader reader(bytes);
  EXPECT_FALSE(decode(reader).ok());
}

TEST(Pdu, DecodeRejectsMaxLenBelowPrefixLen) {
  util::Bytes bytes = encode(Pdu{PrefixPdu{true, P("10.0.0.0/24"), 24, net::Asn(1)}});
  bytes[10] = 8;  // max length < prefix length
  util::ByteReader reader(bytes);
  EXPECT_FALSE(decode(reader).ok());
}

TEST(Pdu, DecodeStream) {
  util::ByteWriter w;
  w.put_bytes(encode(Pdu{CacheResponse{3}}));
  w.put_bytes(encode(Pdu{PrefixPdu{true, P("10.0.0.0/8"), 8, net::Asn(5)}}));
  w.put_bytes(encode(Pdu{EndOfData{3, 9}}));
  auto pdus = decode_stream(w.bytes());
  ASSERT_TRUE(pdus.ok());
  EXPECT_EQ(pdus.value().size(), 3u);
}

TEST(Pdu, ToStringIsInformative) {
  EXPECT_EQ(to_string(Pdu{ResetQuery{}}), "ResetQuery");
  EXPECT_NE(to_string(Pdu{SerialNotify{1, 2}}).find("serial=2"), std::string::npos);
}

// --- Cache server ----------------------------------------------------------------

TEST(CacheServer, FullResponseToResetQuery) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001), V("10.1.0.0/16", 24, 65002)});
  const auto response = cache.handle(Pdu{ResetQuery{}}, kVersion0);
  ASSERT_EQ(response.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<CacheResponse>(response.front()));
  EXPECT_TRUE(std::holds_alternative<EndOfData>(response.back()));
  EXPECT_EQ(std::get<EndOfData>(response.back()).serial, 0u);
}

TEST(CacheServer, UpdateComputesDelta) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001), V("10.1.0.0/16", 16, 65002)});
  const auto notify =
      cache.update({V("10.0.0.0/16", 16, 65001), V("10.2.0.0/16", 16, 65003)});
  EXPECT_EQ(notify.serial, 1u);

  const auto response = cache.handle(Pdu{SerialQuery{11, 0}}, kVersion0);
  // CacheResponse + withdraw 10.1 + announce 10.2 + EndOfData.
  ASSERT_EQ(response.size(), 4u);
  const auto& withdraw = std::get<PrefixPdu>(response[1]);
  EXPECT_FALSE(withdraw.announce);
  EXPECT_EQ(withdraw.prefix, P("10.1.0.0/16"));
  const auto& announce = std::get<PrefixPdu>(response[2]);
  EXPECT_TRUE(announce.announce);
  EXPECT_EQ(announce.prefix, P("10.2.0.0/16"));
}

TEST(CacheServer, CurrentSerialGetsEmptyDelta) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001)});
  const auto response = cache.handle(Pdu{SerialQuery{11, 0}}, kVersion0);
  ASSERT_EQ(response.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<CacheResponse>(response[0]));
  EXPECT_TRUE(std::holds_alternative<EndOfData>(response[1]));
}

TEST(CacheServer, AncientSerialGetsCacheReset) {
  CacheServer cache(11, {}, /*history_limit=*/2);
  for (int i = 0; i < 5; ++i) {
    cache.update({V("10.0.0.0/16", 16, static_cast<std::uint32_t>(65000 + i))});
  }
  const auto response = cache.handle(Pdu{SerialQuery{11, 0}}, kVersion0);
  ASSERT_EQ(response.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<CacheReset>(response.front()));
}

TEST(CacheServer, FutureSerialGetsCacheReset) {
  CacheServer cache(11, {});
  const auto response = cache.handle(Pdu{SerialQuery{11, 99}}, kVersion0);
  ASSERT_EQ(response.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<CacheReset>(response.front()));
}

TEST(CacheServer, SessionMismatchGetsCacheReset) {
  CacheServer cache(11, {});
  const auto response = cache.handle(Pdu{SerialQuery{22, 0}}, kVersion0);
  ASSERT_EQ(response.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<CacheReset>(response.front()));
}

TEST(CacheServer, MalformedBytesGetErrorReport) {
  CacheServer cache(11, {});
  const util::Bytes garbage = {0xFF, 0x00};
  const util::Bytes response = cache.handle_bytes(garbage);
  auto pdus = decode_stream(response);
  ASSERT_TRUE(pdus.ok());
  ASSERT_EQ(pdus.value().size(), 1u);
  EXPECT_TRUE(std::holds_alternative<ErrorReport>(pdus.value().front()));
}

TEST(CacheServer, UnsupportedQueryGetsErrorReport) {
  CacheServer cache(11, {});
  const auto response = cache.handle(Pdu{CacheReset{}}, kVersion0);
  ASSERT_EQ(response.size(), 1u);
  const auto& err = std::get<ErrorReport>(response.front());
  EXPECT_EQ(err.code, ErrorCode::kInvalidRequest);
}

// --- Router client -----------------------------------------------------------------

TEST(RouterClient, InitialSyncIsReset) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001), V("10.1.0.0/16", 24, 65002)});
  RouterClient client;
  const auto r = client.sync(cache);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_TRUE(client.synchronized());
  EXPECT_EQ(client.vrps().size(), 2u);
  EXPECT_EQ(client.serial(), 0u);
  EXPECT_EQ(client.session_id(), 11u);
  EXPECT_EQ(client.stats().resets, 1u);
}

TEST(RouterClient, IncrementalSyncAppliesDelta) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001)});
  RouterClient client;
  ASSERT_TRUE(client.sync(cache).ok());

  cache.update({V("10.0.0.0/16", 16, 65001), V("10.9.0.0/16", 16, 65009)});
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.serial(), 1u);
  EXPECT_EQ(client.vrps().size(), 2u);
  EXPECT_EQ(client.stats().serial_syncs, 1u);
  EXPECT_EQ(client.stats().resets, 1u);

  cache.update({V("10.9.0.0/16", 16, 65009)});
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.vrps().size(), 1u);
  EXPECT_EQ(client.vrps().begin()->asn, net::Asn(65009));
}

TEST(RouterClient, FallsBackToResetAfterCacheReset) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001)}, /*history_limit=*/1);
  RouterClient client;
  ASSERT_TRUE(client.sync(cache).ok());

  // Age the client's serial out of the history window.
  for (int i = 0; i < 4; ++i) {
    cache.update({V("10.0.0.0/16", 16, 65001),
                  V("10.50.0.0/16", 16, static_cast<std::uint32_t>(66000 + i))});
  }
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.stats().cache_resets_seen, 1u);
  EXPECT_EQ(client.stats().resets, 2u);
  EXPECT_EQ(client.vrps(), cache.current());
  EXPECT_EQ(client.serial(), cache.serial());
}

TEST(RouterClient, StateMatchesCacheAfterManyChurns) {
  CacheServer cache(11, {});
  RouterClient client;
  ASSERT_TRUE(client.sync(cache).ok());
  for (std::uint32_t i = 0; i < 20; ++i) {
    rpki::VrpSet next;
    for (std::uint32_t k = 0; k <= i % 5; ++k) {
      next.push_back(V("10." + std::to_string(k) + ".0.0/16", 16, 65000 + k));
    }
    cache.update(next);
    ASSERT_TRUE(client.sync(cache).ok());
    EXPECT_EQ(client.vrps(), cache.current()) << "iteration " << i;
  }
}

TEST(RouterClient, BuildsUsableOriginValidationIndex) {
  CacheServer cache(11, {V("10.0.0.0/16", 20, 65001)});
  RouterClient client;
  ASSERT_TRUE(client.sync(cache).ok());
  const auto index = client.build_index();
  EXPECT_EQ(index.validate(P("10.0.0.0/18"), net::Asn(65001)),
            rpki::OriginValidity::kValid);
  EXPECT_EQ(index.validate(P("10.0.0.0/18"), net::Asn(65002)),
            rpki::OriginValidity::kInvalid);
}

// --- Serial synchronisation edge cases ----------------------------------------

TEST(SerialArithmetic, Rfc1982HalfSpaceComparison) {
  EXPECT_TRUE(serial_gt(1, 0));
  EXPECT_FALSE(serial_gt(0, 1));
  EXPECT_FALSE(serial_gt(7, 7));
  // Wraparound: 0 is *later* than 0xFFFFFFFF in the circular space.
  EXPECT_TRUE(serial_gt(0, 0xFFFFFFFFu));
  EXPECT_FALSE(serial_gt(0xFFFFFFFFu, 0));
  EXPECT_TRUE(serial_gt(5, 0xFFFFFFF0u));
  EXPECT_FALSE(serial_gt(0xFFFFFFF0u, 5));
}

TEST(RouterClient, SerialSyncSurvivesWraparound) {
  // A cache that restarted near the top of the circular serial space:
  // incremental syncs must keep working as the serial crosses 2^32.
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001)}, /*history_limit=*/16,
                    kMaxSupportedVersion, /*initial_serial=*/0xFFFFFFFEu);
  RouterClient client;
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.serial(), 0xFFFFFFFEu);

  for (std::uint32_t i = 0; i < 4; ++i) {
    rpki::VrpSet next{V("10.0.0.0/16", 16, 65001),
                      V("10.7.0.0/16", 16, 65100 + i)};
    cache.update(next);
    ASSERT_TRUE(client.sync(cache).ok()) << "update " << i;
    EXPECT_EQ(client.vrps(), cache.current()) << "update " << i;
    EXPECT_EQ(client.serial(), cache.serial()) << "update " << i;
  }
  // Serial wrapped 0xFFFFFFFE -> ... -> 2 without a single reset resync.
  EXPECT_EQ(cache.serial(), 2u);
  EXPECT_EQ(client.stats().resets, 1u);
  EXPECT_EQ(client.stats().serial_syncs, 4u);
  EXPECT_EQ(client.stats().cache_resets_seen, 0u);
}

TEST(RouterClient, CacheRestartMidSyncForcesResetAndNewSession) {
  // The cache process restarts between two syncs (new session id, fresh
  // serial space): the serial query must be answered with Cache Reset and
  // the client must resync fully under the new session.
  CacheServer original(11, {V("10.0.0.0/16", 16, 65001)});
  RouterClient client;
  ASSERT_TRUE(client.sync(original).ok());
  ASSERT_EQ(client.session_id(), 11u);

  CacheServer restarted(12, {V("10.1.0.0/16", 16, 65002)},
                        /*history_limit=*/16, kMaxSupportedVersion,
                        /*initial_serial=*/500);
  ASSERT_TRUE(client.sync(restarted).ok());
  EXPECT_EQ(client.stats().cache_resets_seen, 1u);
  EXPECT_EQ(client.stats().resets, 2u);
  EXPECT_EQ(client.session_id(), 12u);
  EXPECT_EQ(client.serial(), 500u);
  EXPECT_EQ(client.vrps(), restarted.current());
}

TEST(RouterClient, EmptyDeltaAdvancesSerialWithoutPrefixPdus) {
  // A validation run that produced the same VRP set still bumps the cache
  // serial; the router's incremental sync must advance its serial while
  // receiving zero prefix PDUs.
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001)});
  RouterClient client;
  ASSERT_TRUE(client.sync(cache).ok());
  const auto before = client.stats();

  cache.update({V("10.0.0.0/16", 16, 65001)});  // no-op change
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.serial(), cache.serial());
  EXPECT_EQ(client.serial(), 1u);
  EXPECT_EQ(client.vrps(), cache.current());
  EXPECT_EQ(client.stats().serial_syncs, before.serial_syncs + 1);
  EXPECT_EQ(client.stats().announcements, before.announcements);
  EXPECT_EQ(client.stats().withdrawals, before.withdrawals);
  EXPECT_EQ(client.stats().resets, before.resets);
}

// --- Protocol version 1 (RFC 8210) -------------------------------------------

class PduRoundTripV1 : public ::testing::TestWithParam<Pdu> {};

TEST_P(PduRoundTripV1, EncodeDecodeIdentityAtV1) {
  const Pdu original = GetParam();
  const util::Bytes bytes = encode(original, kVersion1);
  EXPECT_EQ(bytes[0], kVersion1);
  util::ByteReader reader(bytes);
  std::uint8_t version = 0;
  auto decoded = decode(reader, &version);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(version, kVersion1);
  EXPECT_EQ(decoded.value(), original);
}

namespace {
RouterKey sample_router_key() {
  RouterKey key;
  key.announce = true;
  key.subject_key_identifier.fill(0x5A);
  key.asn = net::Asn(64500);
  key.subject_public_key_info = {1, 2, 3, 4, 5, 6, 7, 8};
  return key;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(
    AllTypesV1, PduRoundTripV1,
    ::testing::Values(Pdu{SerialNotify{7, 42}}, Pdu{ResetQuery{}},
                      Pdu{EndOfData{7, 42, 1800, 300, 3600}},
                      Pdu{sample_router_key()},
                      Pdu{ErrorReport{ErrorCode::kUnexpectedProtocolVersion,
                                      {},
                                      "v"}}));

TEST(PduV1, EndOfDataCarriesIntervals) {
  const Pdu pdu{EndOfData{7, 42, 1111, 222, 3333}};
  const auto bytes = encode(pdu, kVersion1);
  EXPECT_EQ(bytes.size(), 24u);
  util::ByteReader reader(bytes);
  auto decoded = decode(reader);
  ASSERT_TRUE(decoded.ok());
  const auto& eod = std::get<EndOfData>(decoded.value());
  EXPECT_EQ(eod.refresh_interval, 1111u);
  EXPECT_EQ(eod.retry_interval, 222u);
  EXPECT_EQ(eod.expire_interval, 3333u);
}

TEST(PduV1, V0EndOfDataKeepsDefaults) {
  const Pdu pdu{EndOfData{7, 42, 1111, 222, 3333}};
  const auto bytes = encode(pdu, kVersion0);
  EXPECT_EQ(bytes.size(), 12u);  // intervals not on the v0 wire
  util::ByteReader reader(bytes);
  auto decoded = decode(reader);
  ASSERT_TRUE(decoded.ok());
  const auto& eod = std::get<EndOfData>(decoded.value());
  EXPECT_EQ(eod.serial, 42u);
  EXPECT_EQ(eod.refresh_interval, 3600u);  // struct default
}

TEST(PduV1, RouterKeyRejectedAtV0) {
  const auto bytes = encode(Pdu{sample_router_key()}, kVersion1);
  util::Bytes downgraded = bytes;
  downgraded[0] = kVersion0;
  util::ByteReader reader(downgraded);
  EXPECT_FALSE(decode(reader).ok());
}

TEST(PduV1, MixedVersionStreamRejected) {
  util::ByteWriter w;
  w.put_bytes(encode(Pdu{CacheResponse{3}}, kVersion1));
  w.put_bytes(encode(Pdu{EndOfData{3, 9}}, kVersion0));
  EXPECT_FALSE(decode_stream(w.bytes()).ok());
}

TEST(VersionNegotiation, V1ClientAgainstV1Cache) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001)});
  cache.add_router_key(sample_router_key());
  RouterClient client;  // prefers v1
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.version(), kVersion1);
  EXPECT_EQ(client.vrps().size(), 1u);
  ASSERT_EQ(client.router_keys().size(), 1u);
  EXPECT_EQ(client.router_keys()[0], sample_router_key());
  EXPECT_EQ(client.stats().version_downgrades, 0u);
}

TEST(VersionNegotiation, V1ClientDowngradesToV0Cache) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001)}, 16, kVersion0);
  cache.add_router_key(sample_router_key());  // must never be served at v0
  RouterClient client;
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.version(), kVersion0);
  EXPECT_EQ(client.stats().version_downgrades, 1u);
  EXPECT_EQ(client.vrps().size(), 1u);
  EXPECT_TRUE(client.router_keys().empty());
}

TEST(VersionNegotiation, V0ClientAgainstV1CacheStaysV0) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001)});
  cache.add_router_key(sample_router_key());
  RouterClient client(kVersion0);
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.version(), kVersion0);
  EXPECT_TRUE(client.router_keys().empty());  // v0 session: no router keys
  EXPECT_EQ(client.vrps().size(), 1u);
}

TEST(VersionNegotiation, IntervalsArriveOverV1) {
  CacheServer cache(11, {});
  RouterClient client;
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.refresh_interval(), 3600u);
  EXPECT_EQ(client.expire_interval(), 7200u);
}

TEST(VersionNegotiation, IncrementalSyncStaysAtNegotiatedVersion) {
  CacheServer cache(11, {V("10.0.0.0/16", 16, 65001)}, 16, kVersion0);
  RouterClient client;
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.version(), kVersion0);
  cache.update({V("10.0.0.0/16", 16, 65001), V("10.2.0.0/16", 16, 65002)});
  ASSERT_TRUE(client.sync(cache).ok());
  EXPECT_EQ(client.version(), kVersion0);
  EXPECT_EQ(client.vrps().size(), 2u);
  EXPECT_EQ(client.stats().version_downgrades, 1u);  // only the first sync
}

}  // namespace
}  // namespace ripki::rtr
