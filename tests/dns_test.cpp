#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "dns/name.hpp"
#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "dns/zone.hpp"

namespace ripki::dns {
namespace {

DnsName N(const std::string& text) {
  auto name = DnsName::parse(text);
  EXPECT_TRUE(name.ok()) << text;
  return name.value();
}

net::IpAddress A4(const std::string& text) {
  return net::IpAddress::parse(text).value();
}

// --- DnsName -----------------------------------------------------------------

TEST(DnsName, ParseLowercasesAndSplits) {
  const DnsName name = N("WWW.Example.COM");
  ASSERT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.labels()[0], "www");
  EXPECT_EQ(name.to_string(), "www.example.com");
}

TEST(DnsName, TrailingDotAccepted) {
  EXPECT_EQ(N("example.com."), N("example.com"));
}

TEST(DnsName, RootName) {
  EXPECT_TRUE(N("").is_root());
  EXPECT_TRUE(N(".").is_root());
  EXPECT_EQ(N("").to_string(), "");
}

TEST(DnsName, RejectsBadLabels) {
  EXPECT_FALSE(DnsName::parse("a..b").ok());
  EXPECT_FALSE(DnsName::parse(std::string(64, 'a') + ".com").ok());
  // > 255 octets total.
  std::string longname;
  for (int i = 0; i < 50; ++i) longname += "abcdef.";
  longname += "com";
  EXPECT_FALSE(DnsName::parse(longname).ok());
}

TEST(DnsName, PrependAndSuffix) {
  const DnsName apex = N("example.com");
  const DnsName www = apex.prepended("WWW");
  EXPECT_EQ(www.to_string(), "www.example.com");
  EXPECT_TRUE(www.ends_with(apex));
  EXPECT_TRUE(www.ends_with(N("com")));
  EXPECT_TRUE(www.ends_with(www));
  EXPECT_FALSE(apex.ends_with(www));
  EXPECT_FALSE(N("notexample.com").ends_with(apex));
}

TEST(DnsName, HashConsistent) {
  EXPECT_EQ(DnsNameHash{}(N("a.b.c")), DnsNameHash{}(N("A.B.C")));
  EXPECT_NE(DnsNameHash{}(N("a.b.c")), DnsNameHash{}(N("a.bc")));
}

// --- Message codec ---------------------------------------------------------------

TEST(Message, QueryRoundTrip) {
  const Message query = Message::query(0x1234, N("www.example.com"), RecordType::kA);
  const auto bytes = encode(query);
  auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().id, 0x1234);
  EXPECT_FALSE(decoded.value().is_response);
  ASSERT_EQ(decoded.value().questions.size(), 1u);
  EXPECT_EQ(decoded.value().questions[0].name, N("www.example.com"));
  EXPECT_EQ(decoded.value().questions[0].type, RecordType::kA);
}

TEST(Message, ResponseWithAllRecordTypesRoundTrips) {
  Message m;
  m.id = 7;
  m.is_response = true;
  m.authoritative = true;
  m.rcode = Rcode::kNoError;
  m.questions.push_back(Question{N("a.example.com"), RecordType::kA});
  m.answers.push_back(ResourceRecord::a(N("a.example.com"), A4("192.0.2.1"), 60));
  m.answers.push_back(
      ResourceRecord::aaaa(N("a.example.com"), A4("2a00:1450::1"), 60));
  m.answers.push_back(
      ResourceRecord::cname(N("alias.example.com"), N("a.example.com")));
  m.authority.push_back(ResourceRecord{
      N("example.com"), RecordType::kSoa, 300,
      SoaData{N("ns1.example.com"), N("admin.example.com"), 1, 2, 3, 4, 5}});
  m.additional.push_back(
      ResourceRecord{N("example.com"), RecordType::kTxt, 300, std::string("hello")});
  m.additional.push_back(ResourceRecord{N("example.com"), RecordType::kNs, 300,
                                        DnsName(N("ns1.example.com"))});

  const auto bytes = encode(m);
  auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  const Message& d = decoded.value();
  EXPECT_TRUE(d.is_response);
  EXPECT_TRUE(d.authoritative);
  ASSERT_EQ(d.answers.size(), 3u);
  EXPECT_EQ(d.answers[0], m.answers[0]);
  EXPECT_EQ(d.answers[1], m.answers[1]);
  EXPECT_EQ(d.answers[2], m.answers[2]);
  ASSERT_EQ(d.authority.size(), 1u);
  EXPECT_EQ(d.authority[0], m.authority[0]);
  ASSERT_EQ(d.additional.size(), 2u);
  EXPECT_EQ(d.additional[0], m.additional[0]);
  EXPECT_EQ(d.additional[1], m.additional[1]);
}

TEST(Message, CompressionShrinksRepeatedNames) {
  Message m;
  m.id = 1;
  m.is_response = true;
  m.questions.push_back(Question{N("www.long-domain-name.example.com"),
                                 RecordType::kA});
  for (int i = 0; i < 5; ++i) {
    m.answers.push_back(ResourceRecord::a(N("www.long-domain-name.example.com"),
                                          A4("192.0.2.1")));
  }
  const auto bytes = encode(m);
  // Uncompressed, the name alone is 34 bytes x 6 occurrences; compression
  // must collapse each repeat to a 2-byte pointer.
  EXPECT_LT(bytes.size(), 150u);
  auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().answers[4].name, N("www.long-domain-name.example.com"));
}

TEST(Message, CompressionSharesSuffixes) {
  Message m;
  m.id = 1;
  m.is_response = true;
  m.answers.push_back(ResourceRecord::cname(N("a.example.com"), N("b.example.com")));
  const auto bytes = encode(m);
  auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<DnsName>(decoded.value().answers[0].rdata), N("b.example.com"));
}

TEST(Message, DecodeRejectsTruncation) {
  const Message query = Message::query(1, N("www.example.com"), RecordType::kA);
  auto bytes = encode(query);
  for (std::size_t cut : {std::size_t{1}, std::size_t{5}, std::size_t{11},
                          bytes.size() - 1}) {
    util::Bytes truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode(truncated).ok()) << "cut=" << cut;
  }
}

TEST(Message, DecodeRejectsTrailingGarbage) {
  auto bytes = encode(Message::query(1, N("example.com"), RecordType::kA));
  bytes.push_back(0xFF);
  EXPECT_FALSE(decode(bytes).ok());
}

TEST(Message, DecodeRejectsCompressionLoop) {
  // Hand-craft a message whose qname is a pointer pointing at itself.
  util::ByteWriter w;
  w.put_u16(1);   // id
  w.put_u16(0);   // flags
  w.put_u16(1);   // qdcount
  w.put_u16(0);
  w.put_u16(0);
  w.put_u16(0);
  w.put_u16(0xC00C);  // name: pointer to offset 12 (itself)
  w.put_u16(1);       // qtype
  w.put_u16(1);       // qclass
  EXPECT_FALSE(decode(w.bytes()).ok());
}

TEST(Message, DecodeRejectsForwardPointer) {
  util::ByteWriter w;
  w.put_u16(1);
  w.put_u16(0);
  w.put_u16(1);
  w.put_u16(0);
  w.put_u16(0);
  w.put_u16(0);
  w.put_u16(0xC020);  // points forward past the name
  w.put_u16(1);
  w.put_u16(1);
  EXPECT_FALSE(decode(w.bytes()).ok());
}

TEST(Message, RcodeSurvivesRoundTrip) {
  Message m;
  m.id = 3;
  m.is_response = true;
  m.rcode = Rcode::kNxDomain;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rcode, Rcode::kNxDomain);
}

// --- Zone DB + server -----------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : server_(&zones_) {
    zones_.add(ResourceRecord::a(N("direct.example.com"), A4("192.0.2.10")));
    zones_.add(ResourceRecord::a(N("direct.example.com"), A4("192.0.2.11")));
    zones_.add(ResourceRecord::aaaa(N("direct.example.com"), A4("2a00::10")));
    zones_.add(ResourceRecord::cname(N("alias.example.com"), N("direct.example.com")));
    zones_.add(ResourceRecord::cname(N("deep.example.com"), N("alias.example.com")));
    // CNAME loop.
    zones_.add(ResourceRecord::cname(N("loop-a.example.com"), N("loop-b.example.com")));
    zones_.add(ResourceRecord::cname(N("loop-b.example.com"), N("loop-a.example.com")));
  }

  InMemoryZoneDb zones_;
  AuthoritativeServer server_;
};

TEST_F(ServerTest, AnswersDirectQuery) {
  const Message response =
      server_.handle(Message::query(9, N("direct.example.com"), RecordType::kA));
  EXPECT_TRUE(response.is_response);
  EXPECT_TRUE(response.authoritative);
  EXPECT_EQ(response.id, 9);
  EXPECT_EQ(response.rcode, Rcode::kNoError);
  EXPECT_EQ(response.answers.size(), 2u);
}

TEST_F(ServerTest, ReturnsCnameForAliasedName) {
  const Message response =
      server_.handle(Message::query(9, N("alias.example.com"), RecordType::kA));
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].type, RecordType::kCname);
}

TEST_F(ServerTest, NxDomainForUnknownName) {
  const Message response =
      server_.handle(Message::query(9, N("missing.example.com"), RecordType::kA));
  EXPECT_EQ(response.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(response.answers.empty());
  EXPECT_EQ(server_.stats().nxdomain, 1u);
}

TEST_F(ServerTest, NoErrorEmptyForExistingNameWrongType) {
  const Message response =
      server_.handle(Message::query(9, N("direct.example.com"), RecordType::kTxt));
  EXPECT_EQ(response.rcode, Rcode::kNoError);
  EXPECT_TRUE(response.answers.empty());
}

TEST_F(ServerTest, MalformedBytesGetFormErr) {
  const util::Bytes garbage = {1, 2, 3};
  const auto response_bytes = server_.handle_bytes(garbage);
  auto response = decode(response_bytes);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().rcode, Rcode::kFormErr);
}

// --- StubResolver ------------------------------------------------------------------------

TEST_F(ServerTest, ResolverDirect) {
  StubResolver resolver(&server_);
  auto result = resolver.resolve(N("direct.example.com"), RecordType::kA);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().addresses.size(), 2u);
  EXPECT_EQ(result.value().cname_hops(), 0u);
}

TEST_F(ServerTest, ResolverChasesChain) {
  StubResolver resolver(&server_);
  auto result = resolver.resolve(N("deep.example.com"), RecordType::kA);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().addresses.size(), 2u);
  EXPECT_EQ(result.value().cname_hops(), 2u);
  ASSERT_EQ(result.value().chain.size(), 3u);
  EXPECT_EQ(result.value().chain[0], N("deep.example.com"));
  EXPECT_EQ(result.value().chain[2], N("direct.example.com"));
}

TEST_F(ServerTest, ResolverDetectsLoop) {
  StubResolver resolver(&server_);
  auto result = resolver.resolve(N("loop-a.example.com"), RecordType::kA);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("loop"), std::string::npos);
}

TEST_F(ServerTest, ResolverReportsNxDomain) {
  StubResolver resolver(&server_);
  auto result = resolver.resolve(N("missing.example.com"), RecordType::kA);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rcode, Rcode::kNxDomain);
  EXPECT_TRUE(result.value().addresses.empty());
}

TEST_F(ServerTest, ResolveAllMergesFamilies) {
  StubResolver resolver(&server_);
  auto result = resolver.resolve_all(N("direct.example.com"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().addresses.size(), 3u);  // 2x A + 1x AAAA
  EXPECT_EQ(result.value().rcode, Rcode::kNoError);
}

TEST_F(ServerTest, ResolverCountsQueries) {
  StubResolver resolver(&server_);
  (void)resolver.resolve(N("deep.example.com"), RecordType::kA);
  EXPECT_EQ(resolver.queries_sent(), 3u);  // deep -> alias -> direct
}

TEST_F(ServerTest, DatagramTruncationAndTcpRetry) {
  // A name with enough A records that the response exceeds 512 bytes.
  for (int i = 0; i < 40; ++i) {
    zones_.add(ResourceRecord::a(
        N("many.example.com"),
        A4("192.0.2." + std::to_string(i + 1))));
  }

  // Raw UDP path: truncated, empty answers, TC set.
  const auto query = Message::query(5, N("many.example.com"), RecordType::kA);
  const auto udp_bytes = server_.handle_datagram(encode(query));
  EXPECT_LE(udp_bytes.size(), AuthoritativeServer::kUdpPayloadLimit);
  auto udp = decode(udp_bytes);
  ASSERT_TRUE(udp.ok());
  EXPECT_TRUE(udp.value().truncated);
  EXPECT_TRUE(udp.value().answers.empty());
  EXPECT_EQ(server_.stats().truncated, 1u);

  // TCP path: complete.
  auto tcp = decode(server_.handle_stream(encode(query)));
  ASSERT_TRUE(tcp.ok());
  EXPECT_FALSE(tcp.value().truncated);
  EXPECT_EQ(tcp.value().answers.size(), 40u);

  // The resolver does the retry automatically and still gets everything.
  StubResolver resolver(&server_);
  auto result = resolver.resolve(N("many.example.com"), RecordType::kA);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().addresses.size(), 40u);
  EXPECT_EQ(resolver.tcp_retries(), 1u);
}

TEST_F(ServerTest, SmallResponsesAreNotTruncated) {
  const auto query = Message::query(6, N("direct.example.com"), RecordType::kA);
  auto udp = decode(server_.handle_datagram(encode(query)));
  ASSERT_TRUE(udp.ok());
  EXPECT_FALSE(udp.value().truncated);
  EXPECT_EQ(udp.value().answers.size(), 2u);

  StubResolver resolver(&server_);
  auto result = resolver.resolve(N("direct.example.com"), RecordType::kA);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(resolver.tcp_retries(), 0u);
}

TEST(Message, TruncatedFlagRoundTrips) {
  Message m;
  m.id = 2;
  m.is_response = true;
  m.truncated = true;
  auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().truncated);
}

TEST(ZoneDb, CountsRecords) {
  InMemoryZoneDb zones;
  zones.add(ResourceRecord::a(N("a.example"), A4("192.0.2.1")));
  zones.add(ResourceRecord::a(N("a.example"), A4("192.0.2.2")));
  EXPECT_EQ(zones.record_count(), 2u);
  EXPECT_TRUE(zones.name_exists(N("a.example")));
  EXPECT_FALSE(zones.name_exists(N("b.example")));
  EXPECT_EQ(zones.lookup(N("a.example"), RecordType::kA).size(), 2u);
  EXPECT_TRUE(zones.lookup(N("a.example"), RecordType::kAaaa).empty());
}

// --- Overlay zone (incremental pipeline's churn layer) -----------------------

class OverlayZoneTest : public ::testing::Test {
 protected:
  OverlayZoneTest() : overlay_(base_) {
    base_.add(ResourceRecord::a(N("www.site.example"), A4("192.0.2.10")));
    base_.add(ResourceRecord::a(N("site.example"), A4("192.0.2.11")));
  }

  InMemoryZoneDb base_;
  OverlayZone overlay_;
};

TEST_F(OverlayZoneTest, PassesThroughUntouchedNames) {
  EXPECT_EQ(overlay_.lookup(N("www.site.example"), RecordType::kA).size(), 1u);
  EXPECT_TRUE(overlay_.name_exists(N("site.example")));
  EXPECT_FALSE(overlay_.name_exists(N("gone.example")));
  EXPECT_EQ(overlay_.serial(), 0u);
  EXPECT_EQ(overlay_.dirty_count(), 0u);
}

TEST_F(OverlayZoneTest, SuppressionYieldsNxDomainAndIsReversible) {
  overlay_.suppress(N("www.site.example"));
  EXPECT_FALSE(overlay_.name_exists(N("www.site.example")));
  EXPECT_TRUE(overlay_.lookup(N("www.site.example"), RecordType::kA).empty());
  EXPECT_EQ(overlay_.serial(), 1u);

  // The server over the overlay must answer NXDOMAIN, not an empty NOERROR.
  AuthoritativeServer server(&overlay_);
  StubResolver resolver(&server);
  auto r = resolver.resolve_all(N("www.site.example"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rcode, Rcode::kNxDomain);

  overlay_.unsuppress(N("www.site.example"));
  EXPECT_EQ(overlay_.lookup(N("www.site.example"), RecordType::kA).size(), 1u);
  EXPECT_EQ(overlay_.serial(), 2u);
}

TEST_F(OverlayZoneTest, OverrideFullyMasksBaseForThatName) {
  // Base has an A record; the override replaces the name with a CNAME
  // only. No fall-through to the base A record for other types.
  overlay_.set_records(
      N("www.site.example"),
      {ResourceRecord::cname(N("www.site.example"), N("edge.cdn.example"))});
  EXPECT_TRUE(overlay_.lookup(N("www.site.example"), RecordType::kA).empty());
  EXPECT_EQ(overlay_.lookup(N("www.site.example"), RecordType::kCname).size(),
            1u);
  // Other names are untouched.
  EXPECT_EQ(overlay_.lookup(N("site.example"), RecordType::kA).size(), 1u);

  overlay_.clear_records(N("www.site.example"));
  EXPECT_EQ(overlay_.lookup(N("www.site.example"), RecordType::kA).size(), 1u);
}

TEST_F(OverlayZoneTest, SerialBumpsOnlyOnEffectiveMutation) {
  overlay_.suppress(N("www.site.example"));
  EXPECT_EQ(overlay_.serial(), 1u);
  overlay_.suppress(N("www.site.example"));  // already suppressed: no-op
  EXPECT_EQ(overlay_.serial(), 1u);
  overlay_.unsuppress(N("gone.example"));  // not suppressed: no-op
  EXPECT_EQ(overlay_.serial(), 1u);
  overlay_.clear_records(N("gone.example"));  // no override: no-op
  EXPECT_EQ(overlay_.serial(), 1u);
}

TEST_F(OverlayZoneTest, DirtySetDrainsInMutationOrderDeduplicated) {
  overlay_.suppress(N("www.site.example"));
  overlay_.set_records(N("site.example"),
                       {ResourceRecord::a(N("site.example"), A4("192.0.2.99"))});
  overlay_.unsuppress(N("www.site.example"));  // second touch, same name

  EXPECT_EQ(overlay_.dirty_count(), 2u);
  const auto dirty = overlay_.drain_dirty();
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], N("www.site.example"));
  EXPECT_EQ(dirty[1], N("site.example"));
  EXPECT_EQ(overlay_.dirty_count(), 0u);

  // Draining resets dedup: the next mutation dirties the name again.
  overlay_.suppress(N("site.example"));
  const auto again = overlay_.drain_dirty();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], N("site.example"));
}

TEST_F(OverlayZoneTest, SuppressionMasksOverrides) {
  overlay_.set_records(N("www.site.example"),
                       {ResourceRecord::a(N("www.site.example"), A4("192.0.2.50"))});
  overlay_.suppress(N("www.site.example"));
  EXPECT_FALSE(overlay_.name_exists(N("www.site.example")));
  EXPECT_TRUE(overlay_.lookup(N("www.site.example"), RecordType::kA).empty());
  // Unsuppressing re-exposes the override, not the base record.
  overlay_.unsuppress(N("www.site.example"));
  const auto records = overlay_.lookup(N("www.site.example"), RecordType::kA);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::get<net::IpAddress>(records[0].rdata), A4("192.0.2.50"));
}

}  // namespace
}  // namespace ripki::dns
