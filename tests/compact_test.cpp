// The compact core data layout behind the million-domain sweep:
//  - util::Arena / util::StringInterner (arena-backed names, 32-bit ids)
//  - core::DomainTable (SoA columns behind AoS-shaped views)
//  - trie::PrefixTrie<V>::Frozen (array-mapped covering walks whose
//    terminal node index keys bgp::CoveringCache)
//  - rpki::SharedValidationCache (warmed once, read concurrently)
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bgp/covering_cache.hpp"
#include "bgp/as_path.hpp"
#include "bgp/rib.hpp"
#include "core/dataset.hpp"
#include "core/pipeline.hpp"
#include "net/prefix.hpp"
#include "rpki/validation_cache.hpp"
#include "trie/prefix_trie.hpp"
#include "util/arena.hpp"
#include "util/interner.hpp"
#include "util/prng.hpp"
#include "web/ecosystem.hpp"

namespace ripki {
namespace {

net::Prefix P(const std::string& text) { return net::Prefix::parse(text).value(); }

// --- arena -------------------------------------------------------------------

TEST(Arena, StoreKeepsViewsStableAcrossBlockGrowth) {
  util::Arena arena(/*block_size=*/64);  // tiny blocks force growth
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 200; ++i) {
    originals.push_back("string-number-" + std::to_string(i));
    views.push_back(arena.store(originals.back()));
  }
  EXPECT_GT(arena.block_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], originals[i]);
  }
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock) {
  util::Arena arena(/*block_size=*/32);
  const std::string big(1000, 'x');
  const std::string_view view = arena.store(big);
  EXPECT_EQ(view, big);
  EXPECT_GE(arena.bytes_used(), big.size());
}

// --- interner ----------------------------------------------------------------

TEST(StringInterner, DeduplicatesAndAssignsDenseIds) {
  util::StringInterner interner;
  const auto a = interner.intern("alpha.example");
  const auto b = interner.intern("beta.example");
  const auto a2 = interner.intern("alpha.example");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.view(a), "alpha.example");
  EXPECT_EQ(interner.view(b), "beta.example");
}

TEST(StringInterner, FindDoesNotIntern) {
  util::StringInterner interner;
  EXPECT_EQ(interner.find("nothing"), util::StringInterner::kNotFound);
  interner.intern("something");
  EXPECT_EQ(interner.find("something"), 0u);
  EXPECT_EQ(interner.find("nothing"), util::StringInterner::kNotFound);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInterner, IdsAreStableUnderArenaGrowth) {
  util::StringInterner interner;
  std::vector<util::StringInterner::Id> ids;
  for (int i = 0; i < 20'000; ++i) {
    ids.push_back(interner.intern("domain-" + std::to_string(i) + ".example"));
  }
  // Dense first-appearance order; views unchanged after later interns.
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_EQ(ids[static_cast<std::size_t>(i)], static_cast<unsigned>(i));
    EXPECT_EQ(interner.view(ids[static_cast<std::size_t>(i)]),
              "domain-" + std::to_string(i) + ".example");
  }
  EXPECT_GT(interner.memory_bytes(), 0u);
}

// --- DomainTable: SoA storage behind AoS views --------------------------------

core::DomainRecord make_record(std::uint64_t rank, const std::string& name) {
  core::DomainRecord record;
  record.rank = rank;
  record.name = name;
  record.dnssec_signed = (rank % 2) == 0;
  record.www.resolved = true;
  record.www.address_count = 3;
  record.www.cname_hops = 2;
  record.www.terminal_cname = "edge-" + std::to_string(rank % 5) + ".cdn.example";
  record.www.pairs.push_back(core::PrefixAsPair{
      P("10.0.0.0/8"), net::Asn(64500), rpki::OriginValidity::kValid});
  record.www.pairs.push_back(core::PrefixAsPair{
      P("10.1.0.0/16"), net::Asn(64501), rpki::OriginValidity::kNotFound});
  record.apex.resolved = rank % 3 != 0;
  if (record.apex.resolved) {
    record.apex.address_count = 1;
    record.apex.pairs.push_back(core::PrefixAsPair{
        P("192.0.2.0/24"), net::Asn(64502), rpki::OriginValidity::kInvalid});
  }
  return record;
}

TEST(DomainTable, ViewsRoundTripAppendedRecords) {
  core::DomainTable table;
  std::vector<core::DomainRecord> originals;
  for (std::uint64_t rank = 1; rank <= 50; ++rank) {
    originals.push_back(make_record(rank, "site" + std::to_string(rank) + ".example"));
    table.append(originals.back());
  }
  ASSERT_EQ(table.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    const auto view = table[i];
    // View equality against the AoS record, field accessors, and a full
    // materialized round trip must all agree.
    EXPECT_TRUE(view == originals[i]) << "row " << i;
    EXPECT_EQ(view.name, originals[i].name);
    EXPECT_EQ(view.rank, originals[i].rank);
    EXPECT_EQ(view.www.terminal_cname, originals[i].www.terminal_cname);
    EXPECT_EQ(view.www.coverage(), originals[i].www.coverage());
    EXPECT_EQ(view.primary().to_result(), originals[i].primary());
    EXPECT_EQ(table.record(i), originals[i]);
  }
}

TEST(DomainTable, IterationMatchesIndexing) {
  core::DomainTable table;
  for (std::uint64_t rank = 1; rank <= 10; ++rank) {
    table.append(make_record(rank, "iter" + std::to_string(rank) + ".example"));
  }
  std::size_t i = 0;
  for (const auto view : table) {
    EXPECT_TRUE(view == table.record(i)) << i;
    ++i;
  }
  EXPECT_EQ(i, table.size());
}

TEST(DomainTable, AppendTableReproducesSerialOrder) {
  // The parallel sweep's merge contract: appending per-shard fragments in
  // shard order must equal one table built by appending rows directly.
  core::DomainTable direct;
  core::DomainTable fragment_a;
  core::DomainTable fragment_b;
  for (std::uint64_t rank = 1; rank <= 40; ++rank) {
    const auto record = make_record(rank, "m" + std::to_string(rank) + ".example");
    direct.append(record);
    (rank <= 23 ? fragment_a : fragment_b).append(record);
  }
  core::DomainTable merged;
  merged.append_table(fragment_a);
  merged.append_table(fragment_b);
  EXPECT_TRUE(merged == direct);
  EXPECT_EQ(merged.pair_count(), direct.pair_count());
  EXPECT_GT(merged.memory_bytes(), 0u);
}

TEST(DomainTable, EqualityIsLogicalNotIdBased) {
  // Same rows interned in different orders -> different ids, equal tables.
  const auto r1 = make_record(1, "one.example");
  const auto r2 = make_record(2, "two.example");
  core::DomainTable a;
  a.append(r1);
  a.append(r2);
  core::DomainTable b;
  // Interning "two" first gives it id 0 in b's interner.
  core::DomainTable scratch;
  scratch.append(r2);
  b.append(r1);
  b.append(r2);
  EXPECT_TRUE(a == b);
  core::DomainTable c;
  c.append(r2);
  c.append(r1);
  EXPECT_FALSE(a == c);  // order matters
}

// --- frozen trie -------------------------------------------------------------

TEST(FrozenTrie, DeepestCoveringPathMatchesPointerWalk) {
  trie::PrefixTrie<int> trie;
  util::Prng prng(99);
  std::vector<net::Prefix> prefixes;
  for (int i = 0; i < 400; ++i) {
    const auto base = static_cast<std::uint32_t>(prng.next_u64());
    const int length = 8 + static_cast<int>(prng.next_u64() % 17);
    const auto prefix = net::Prefix(net::IpAddress::v4(base), length);
    trie.insert(prefix, i);
    prefixes.push_back(prefix);
  }
  const auto frozen = trie.freeze();
  EXPECT_GT(frozen.node_count(), 0u);
  EXPECT_LE(frozen.node_count(), 2 * trie.size() + 2);

  // Probe with addresses inside stored prefixes and fully random ones.
  for (int i = 0; i < 2'000; ++i) {
    net::IpAddress addr = net::IpAddress::v4(static_cast<std::uint32_t>(prng.next_u64()));
    if (i % 2 == 0) {
      addr = prefixes[static_cast<std::size_t>(i) % prefixes.size()].address();
    }
    const auto expected = trie.covering(addr);
    const auto node = frozen.deepest_covering(addr);
    const auto actual = frozen.path_matches(node);
    ASSERT_EQ(actual.size(), expected.size()) << addr.to_string();
    for (std::size_t m = 0; m < expected.size(); ++m) {
      EXPECT_EQ(actual[m].prefix, expected[m].prefix);
      EXPECT_EQ(*actual[m].value, *expected[m].value);
    }
  }
}

TEST(FrozenTrie, SameDeepestNodeMeansSameCoveringSet) {
  trie::PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("10.1.0.0/16"), 2);
  const auto frozen = trie.freeze();
  // Two different addresses under the same deepest prefix share the node —
  // the invariant CoveringCache keys on.
  const auto a = frozen.deepest_covering(net::IpAddress::parse("10.1.2.3").value());
  const auto b = frozen.deepest_covering(net::IpAddress::parse("10.1.200.9").value());
  EXPECT_NE(a, frozen.kNoNode);
  EXPECT_EQ(a, b);
  const auto c = frozen.deepest_covering(net::IpAddress::parse("10.2.0.1").value());
  EXPECT_NE(a, c);  // /8 only
  EXPECT_EQ(frozen.deepest_covering(net::IpAddress::parse("192.0.2.1").value()),
            frozen.kNoNode);
}

// --- shared validation cache -------------------------------------------------

class SharedValidationCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rpki::VrpSet vrps;
    for (std::uint32_t i = 0; i < 64; ++i) {
      vrps.push_back(rpki::Vrp{
          P(std::to_string(10 + i % 40) + "." + std::to_string(i) + ".0.0/16"),
          static_cast<std::uint8_t>(16 + i % 9), net::Asn(64500 + i % 7)});
    }
    index_ = rpki::VrpIndex(vrps);
    for (std::uint32_t i = 0; i < 128; ++i) {
      keys_.emplace_back(
          P(std::to_string(10 + i % 50) + "." + std::to_string(i % 60) +
            ".0.0/" + std::to_string(16 + i % 10)),
          net::Asn(64500 + i % 9));
    }
    for (const auto& [prefix, origin] : keys_) {
      shared_.warm(index_, prefix, origin);
    }
  }

  void check_with_threads(std::size_t n_threads) {
    std::atomic<std::uint64_t> mismatches{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < n_threads; ++t) {
      threads.emplace_back([&] {
        rpki::ValidationCache worker(&index_, &shared_);
        for (int round = 0; round < 200; ++round) {
          for (const auto& [prefix, origin] : keys_) {
            if (worker.validate(prefix, origin) !=
                index_.validate(prefix, origin)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        // Every key was warmed, so the private tier stays empty and all
        // traffic counts as hits.
        if (worker.size() != 0) mismatches.fetch_add(1);
        if (worker.misses() != 0) mismatches.fetch_add(1);
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0u);
  }

  rpki::VrpIndex index_;
  rpki::SharedValidationCache shared_;
  std::vector<std::pair<net::Prefix, net::Asn>> keys_;
};

TEST_F(SharedValidationCacheTest, WarmedLookupsMatchIndexOneThread) {
  check_with_threads(1);
}

TEST_F(SharedValidationCacheTest, WarmedLookupsMatchIndexFourThreads) {
  check_with_threads(4);
}

TEST_F(SharedValidationCacheTest, WarmedLookupsMatchIndexSixteenThreads) {
  check_with_threads(16);
}

TEST_F(SharedValidationCacheTest, UnwarmedKeysOverflowToPrivateTier) {
  rpki::ValidationCache worker(&index_, &shared_);
  const auto prefix = P("203.0.113.0/24");
  const auto origin = net::Asn(65001);
  EXPECT_EQ(shared_.lookup(prefix, origin), nullptr);
  const auto first = worker.validate(prefix, origin);
  EXPECT_EQ(first, index_.validate(prefix, origin));
  EXPECT_EQ(worker.misses(), 1u);
  EXPECT_EQ(worker.size(), 1u);
  EXPECT_EQ(worker.validate(prefix, origin), first);
  EXPECT_EQ(worker.hits(), 1u);
}

// --- covering cache over the frozen RIB --------------------------------------

TEST(CoveringCacheFrozen, NodeKeyedSlotsHitForAddressesInTheSamePrefix) {
  bgp::Rib rib;
  rib.add(bgp::RibEntry{P("10.0.0.0/8"), bgp::AsPath::sequence({1, 64500}), 0, 0});
  rib.add(bgp::RibEntry{P("10.1.0.0/16"), bgp::AsPath::sequence({1, 64501}), 0, 0});
  rib.freeze();
  ASSERT_TRUE(rib.frozen());

  bgp::CoveringCache cache(&rib);
  const auto first =
      cache.covering(net::IpAddress::parse("10.1.2.3").value());
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  // A different address in the same deepest prefix shares the slot.
  cache.covering(net::IpAddress::parse("10.1.99.7").value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // Nothing-covers also caches (the dedicated kNoNode slot).
  cache.covering(net::IpAddress::parse("192.0.2.1").value());
  cache.covering(net::IpAddress::parse("198.51.100.1").value());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

// --- downscaled million-domain identity rung ---------------------------------

TEST(MillionRungDownscaled, ParallelSweepIsByteIdenticalToSerial) {
  // CI-scaled stand-in for the 1M rung: the same contract — parallel
  // sweep output identical to serial, rank space stretched to 1M — at a
  // domain count the suite can afford.
  web::EcosystemConfig config;
  config.domain_count = 4'000;
  config.rank_space = 1'000'000;
  config.isp_count = 300;
  config.hoster_count = 80;
  config.enterprise_count = 300;
  config.transit_count = 40;
  const auto eco = web::Ecosystem::generate(config);

  core::MeasurementPipeline serial(*eco, core::PipelineConfig{});
  const core::Dataset baseline = serial.run();
  ASSERT_EQ(baseline.domains.size(), 4'000u);

  for (const std::size_t threads : {1u, 4u}) {
    core::PipelineConfig parallel_config;
    parallel_config.threads = threads;
    core::MeasurementPipeline parallel(*eco, parallel_config);
    const core::Dataset dataset = parallel.run();
    EXPECT_TRUE(dataset == baseline) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ripki
