// Integration tests: the full pipeline over a generated ecosystem, the two
// CDN classifiers, the per-figure reports, and the paper's shape claims.
#include <gtest/gtest.h>

#include "core/classifiers.hpp"
#include "core/pipeline.hpp"
#include "core/reports.hpp"
#include "util/stats.hpp"

namespace ripki::core {
namespace {

web::EcosystemConfig test_config() {
  web::EcosystemConfig config;
  config.domain_count = 12'000;
  config.isp_count = 600;
  config.hoster_count = 200;
  config.enterprise_count = 800;
  config.transit_count = 80;
  return config;
}

/// Shared fixture: ecosystem generation plus one pipeline run (the
/// expensive part), reused across all integration tests.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eco_ = web::Ecosystem::generate(test_config()).release();
    pipeline_ = new MeasurementPipeline(*eco_, PipelineConfig{});
    dataset_ = new Dataset(pipeline_->run());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pipeline_;
    delete eco_;
    dataset_ = nullptr;
    pipeline_ = nullptr;
    eco_ = nullptr;
  }

  static web::Ecosystem* eco_;
  static MeasurementPipeline* pipeline_;
  static Dataset* dataset_;
};

web::Ecosystem* PipelineTest::eco_ = nullptr;
MeasurementPipeline* PipelineTest::pipeline_ = nullptr;
Dataset* PipelineTest::dataset_ = nullptr;

// --- dataset sanity ----------------------------------------------------------

TEST_F(PipelineTest, ProcessesEveryDomain) {
  EXPECT_EQ(dataset_->domains.size(), eco_->domain_count());
  EXPECT_EQ(dataset_->counters.domains_total, eco_->domain_count());
  EXPECT_EQ(dataset_->rank_space, eco_->config().rank_space);
}

TEST_F(PipelineTest, MostDomainsResolveAndMap) {
  std::size_t resolved = 0;
  std::size_t with_pairs = 0;
  for (const auto record : dataset_->rows()) {
    if (record.www.resolved) ++resolved;
    if (!record.primary().pairs.empty()) ++with_pairs;
  }
  EXPECT_GT(resolved, dataset_->domains.size() * 99 / 100);
  EXPECT_GT(with_pairs, dataset_->domains.size() * 99 / 100);
}

TEST_F(PipelineTest, ExcludedDnsMatchesConfiguredRate) {
  const double rate = static_cast<double>(dataset_->counters.domains_excluded_dns) /
                      static_cast<double>(dataset_->counters.domains_total);
  // Configured 0.07%; allow generous sampling noise at 12k domains.
  EXPECT_GT(rate, 0.0001);
  EXPECT_LT(rate, 0.004);
  EXPECT_GT(dataset_->counters.special_purpose_excluded, 0u);
}

TEST_F(PipelineTest, PairValiditiesAreAssigned) {
  std::size_t valid = 0;
  std::size_t invalid = 0;
  std::size_t not_found = 0;
  for (const auto record : dataset_->rows()) {
    for (const auto& pair : record.www.pairs) {
      switch (pair.validity) {
        case rpki::OriginValidity::kValid: ++valid; break;
        case rpki::OriginValidity::kInvalid: ++invalid; break;
        case rpki::OriginValidity::kNotFound: ++not_found; break;
      }
    }
  }
  EXPECT_GT(valid, 0u);
  EXPECT_GT(invalid, 0u);
  EXPECT_GT(not_found, valid);  // deployment is sparse
}

TEST_F(PipelineTest, MrtPathWasExercised) {
  EXPECT_GT(pipeline_->mrt_stats().records, 1u);
  EXPECT_GT(pipeline_->mrt_stats().rib_entries, 0u);
  EXPECT_EQ(pipeline_->rib().entry_count(), eco_->rib().entry_count());
}

TEST_F(PipelineTest, AsSetEntriesWereExcluded) {
  EXPECT_GT(dataset_->counters.as_set_entries_excluded, 0u);
}

TEST_F(PipelineTest, ValidationReportIsClean) {
  const auto& report = pipeline_->validation_report();
  EXPECT_EQ(report.tas_processed, 5u);
  EXPECT_GT(report.roas_accepted, 0u);
  EXPECT_EQ(report.roas_rejected, 0u);
  EXPECT_EQ(report.vrps.size(), pipeline_->vrp_index().size());
}

// --- paper shape claims ---------------------------------------------------------

TEST_F(PipelineTest, PopularDomainsAreLessProtected) {
  const auto summary = reports::figure4_summary(*dataset_);
  EXPECT_GT(summary.mean_coverage, 0.02);
  EXPECT_LT(summary.mean_coverage, 0.12);
  // The perverse trend: top of the ranking less covered than the tail.
  EXPECT_LT(summary.top_100k_coverage, summary.last_100k_coverage * 0.85);
  // Invalids are rare (misconfiguration, not hijacks).
  EXPECT_GT(summary.mean_invalid, 0.0001);
  EXPECT_LT(summary.mean_invalid, 0.01);
}

TEST_F(PipelineTest, InvalidIsRankIndependent) {
  const auto rows = reports::figure4_rpki_by_rank(*dataset_, 250'000);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_LT(row.invalid, 0.01) << "bin at " << row.rank_lo;
  }
}

TEST_F(PipelineTest, Figure4FractionsSumToOne) {
  for (const auto& row : reports::figure4_rpki_by_rank(*dataset_, 100'000)) {
    if (row.domains == 0) continue;
    EXPECT_NEAR(row.valid + row.invalid + row.not_found, 1.0, 1e-9);
    EXPECT_NEAR(row.covered, row.valid + row.invalid, 1e-9);
  }
}

TEST_F(PipelineTest, CdnDomainsAreBarelyCovered) {
  const ChainCdnClassifier chain;
  const auto summary = reports::figure6_summary(*dataset_, chain);
  EXPECT_LT(summary.cdn_mean_coverage, summary.all_mean_coverage * 0.4);
  EXPECT_GT(summary.non_cdn_mean_coverage, summary.cdn_mean_coverage);
}

TEST_F(PipelineTest, CdnRpkiIsRankIndependent) {
  const ChainCdnClassifier chain;
  const auto rows = reports::figure6_cdn_rpki(*dataset_, chain, 250'000);
  ASSERT_EQ(rows.size(), 4u);
  // CDN coverage fluctuates around a low constant; no bin should exceed a
  // small ceiling (the unconditioned web is several times higher).
  for (const auto& row : rows) {
    if (row.cdn_domains < 50) continue;
    EXPECT_LT(row.cdn_coverage, 0.03) << "bin at " << row.rank_lo;
  }
}

TEST_F(PipelineTest, CdnShareFallsWithRank) {
  const ChainCdnClassifier chain;
  const PatternCdnClassifier pattern;
  const auto rows = reports::figure5_cdn_share(*dataset_, chain, pattern, 250'000);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_GT(rows.front().chain_fraction, rows.back().chain_fraction * 1.8);
}

TEST_F(PipelineTest, ChainHeuristicUnderestimatesPattern) {
  const ChainCdnClassifier chain;
  const PatternCdnClassifier pattern;
  const auto rows = reports::figure5_cdn_share(*dataset_, chain, pattern, 100'000);
  // Within HTTPArchive's coverage, the pattern classifier sees at least as
  // many CDN domains as the conservative chain heuristic.
  for (const auto& row : rows) {
    if (!row.pattern_fraction.has_value() || row.domains < 100) continue;
    EXPECT_GE(*row.pattern_fraction + 0.01, row.chain_fraction)
        << "bin at " << row.rank_lo;
  }
  // And the pattern classifier stops at 300k (paper: first 300k ranks).
  EXPECT_FALSE(rows.back().pattern_fraction.has_value());
}

TEST_F(PipelineTest, ClassifiersTrackGroundTruth) {
  const ChainCdnClassifier chain;
  const PatternCdnClassifier pattern(0);  // unlimited rank coverage
  std::size_t cdn_truth = 0;
  std::size_t chain_hits = 0;
  std::size_t pattern_hits = 0;
  std::size_t chain_false_positives = 0;
  for (std::size_t i = 0; i < dataset_->domains.size(); ++i) {
    const auto record = dataset_->domains[i];
    const bool truth = eco_->domain_uses_cdn(i);
    if (truth) {
      ++cdn_truth;
      chain_hits += chain.is_cdn(record) ? 1 : 0;
      pattern_hits += pattern.is_cdn(record) ? 1 : 0;
    } else if (chain.is_cdn(record)) {
      ++chain_false_positives;
    }
  }
  ASSERT_GT(cdn_truth, 0u);
  // The chain heuristic catches most but not all (single-CNAME and
  // chainless deployments are invisible to it).
  EXPECT_GT(chain_hits, cdn_truth * 55 / 100);
  EXPECT_LT(chain_hits, cdn_truth);
  // Pattern matching sees single-CNAME deployments too.
  EXPECT_GT(pattern_hits, chain_hits);
  // False positives exist (hosting-platform chains) but are rare.
  EXPECT_LT(chain_false_positives, dataset_->domains.size() / 50);
}

TEST_F(PipelineTest, Figure3OverlapRisesTowardTheTail) {
  const auto rows = reports::figure3_overlap(*dataset_, 250'000);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_GT(rows.front().domains, 100u);
  // www/apex infrastructure agreement grows with rank (76% -> 94%+).
  EXPECT_LT(rows.front().mean_equal_fraction + 0.05,
            rows.back().mean_equal_fraction);
  EXPECT_GT(rows.back().mean_equal_fraction, 0.80);
}

TEST_F(PipelineTest, Table1FindsPartiallyCoveredTopDomains) {
  const auto rows = reports::table1_top_covered(*dataset_, 10);
  ASSERT_EQ(rows.size(), 10u);
  std::uint64_t last_rank = 0;
  for (const auto& row : rows) {
    EXPECT_GT(row.rank, last_rank);  // sorted by rank
    last_rank = row.rank;
    EXPECT_TRUE(row.www_covered > 0 || row.apex_covered > 0);
    EXPECT_LE(row.www_covered, row.www_total);
  }
}

TEST_F(PipelineTest, CdnCensusMatchesPaper) {
  const CdnAsDirectory directory(eco_->registry());
  EXPECT_EQ(directory.total_cdn_ases(), 199u);

  const auto census = directory.census(pipeline_->validation_report().vrps);
  std::size_t total_entries = 0;
  for (const auto& entry : census) {
    if (entry.cdn == "Internap") {
      EXPECT_EQ(entry.rpki_entries.size(), 4u);
      EXPECT_EQ(entry.roa_origin_ases.size(), 3u);
      EXPECT_EQ(entry.ases.size(), 41u);
    } else {
      EXPECT_TRUE(entry.rpki_entries.empty()) << entry.cdn;
    }
    total_entries += entry.rpki_entries.size();
  }
  EXPECT_EQ(total_entries, 4u);
}

TEST_F(PipelineTest, IspAndHosterPenetrationExceedsCdns) {
  const auto& vrps = pipeline_->validation_report().vrps;
  const double isp = CdnAsDirectory::category_penetration(
      eco_->registry(), web::AsCategory::kIsp, vrps);
  const double hoster = CdnAsDirectory::category_penetration(
      eco_->registry(), web::AsCategory::kHoster, vrps);
  const double cdn = CdnAsDirectory::category_penetration(
      eco_->registry(), web::AsCategory::kCdn, vrps);
  EXPECT_GT(isp, 0.03);
  EXPECT_GT(hoster, 0.02);
  EXPECT_LT(cdn, 0.04);       // only Internap's 3 ASes out of 199
  EXPECT_GT(isp, cdn * 2);
}

// --- vantage and transport robustness -------------------------------------------

TEST_F(PipelineTest, ResultsIndependentOfDnsVantage) {
  PipelineConfig config;
  config.vantage = web::Vantage::kRedwoodCity;
  config.max_domains = 2'000;
  MeasurementPipeline redwood(*eco_, config);
  const Dataset other = redwood.run();

  // Headline coverage from the other vantage must agree closely (the
  // paper: "our main results remain independent of the DNS server
  // selection").
  util::Accumulator a;
  util::Accumulator b;
  for (std::size_t i = 0; i < other.domains.size(); ++i) {
    if (dataset_->domains[i].primary().pairs.empty()) continue;
    if (other.domains[i].primary().pairs.empty()) continue;
    a.add(dataset_->domains[i].primary().coverage());
    b.add(other.domains[i].primary().coverage());
  }
  EXPECT_NEAR(a.mean(), b.mean(), 0.01);
}

TEST_F(PipelineTest, RtrTransportYieldsIdenticalValidation) {
  PipelineConfig config;
  config.use_rtr = true;
  config.max_domains = 1'000;
  MeasurementPipeline rtr_pipeline(*eco_, config);
  const Dataset rtr_dataset = rtr_pipeline.run();

  ASSERT_EQ(rtr_dataset.domains.size(), 1'000u);
  for (std::size_t i = 0; i < rtr_dataset.domains.size(); ++i) {
    ASSERT_EQ(rtr_dataset.domains[i].www.pairs.size(),
              dataset_->domains[i].www.pairs.size());
    for (std::size_t p = 0; p < rtr_dataset.domains[i].www.pairs.size(); ++p) {
      EXPECT_EQ(rtr_dataset.domains[i].www.pairs[p],
                dataset_->domains[i].www.pairs[p]);
    }
  }
}

TEST_F(PipelineTest, RrdpCollectionYieldsIdenticalValidation) {
  PipelineConfig config;
  config.use_rrdp = true;
  config.max_domains = 500;
  MeasurementPipeline rrdp_pipeline(*eco_, config);
  const Dataset rrdp_dataset = rrdp_pipeline.run();

  // The RRDP-mirrored, TAL-bootstrapped validation must produce exactly
  // the same VRP set and per-pair outcomes as in-process access.
  EXPECT_EQ(rrdp_pipeline.validation_report().vrps.size(),
            pipeline_->validation_report().vrps.size());
  for (std::size_t i = 0; i < rrdp_dataset.domains.size(); ++i) {
    ASSERT_EQ(rrdp_dataset.domains[i].www.pairs.size(),
              dataset_->domains[i].www.pairs.size());
    for (std::size_t p = 0; p < rrdp_dataset.domains[i].www.pairs.size(); ++p) {
      EXPECT_EQ(rrdp_dataset.domains[i].www.pairs[p],
                dataset_->domains[i].www.pairs[p]);
    }
  }
}

TEST_F(PipelineTest, MaxDomainsLimitsWork) {
  PipelineConfig config;
  config.max_domains = 123;
  MeasurementPipeline limited(*eco_, config);
  EXPECT_EQ(limited.run().domains.size(), 123u);
}

// --- VariantResult unit behaviour --------------------------------------------------

TEST(VariantResult, CoverageMath) {
  VariantResult v;
  v.resolved = true;
  const auto p = net::Prefix::parse("10.0.0.0/8").value();
  v.pairs = {
      PrefixAsPair{p, net::Asn(1), rpki::OriginValidity::kValid},
      PrefixAsPair{p, net::Asn(2), rpki::OriginValidity::kInvalid},
      PrefixAsPair{p, net::Asn(3), rpki::OriginValidity::kNotFound},
      PrefixAsPair{p, net::Asn(4), rpki::OriginValidity::kNotFound},
  };
  EXPECT_DOUBLE_EQ(v.coverage(), 0.5);
  EXPECT_DOUBLE_EQ(v.fraction(rpki::OriginValidity::kValid), 0.25);
  EXPECT_DOUBLE_EQ(v.fraction(rpki::OriginValidity::kInvalid), 0.25);
  EXPECT_DOUBLE_EQ(v.fraction(rpki::OriginValidity::kNotFound), 0.5);

  const VariantResult empty;
  EXPECT_DOUBLE_EQ(empty.coverage(), 0.0);
}

TEST(DedupePairs, SortsAndRemovesDuplicatesByPrefixAndOrigin) {
  const auto p1 = net::Prefix::parse("10.0.0.0/8").value();
  const auto p2 = net::Prefix::parse("10.1.0.0/16").value();
  std::vector<PrefixAsPair> pairs{
      {p2, net::Asn(65002), {}}, {p1, net::Asn(65001), {}},
      {p2, net::Asn(65001), {}}, {p1, net::Asn(65001), {}},
      {p2, net::Asn(65002), {}}, {p2, net::Asn(65002), {}},
  };
  dedupe_pairs(pairs);
  ASSERT_EQ(pairs.size(), 3u);
  // Sorted by (prefix, origin), each pair exactly once.
  EXPECT_EQ(pairs[0].prefix, p1);
  EXPECT_EQ(pairs[0].origin, net::Asn(65001));
  EXPECT_EQ(pairs[1].prefix, p2);
  EXPECT_EQ(pairs[1].origin, net::Asn(65001));
  EXPECT_EQ(pairs[2].prefix, p2);
  EXPECT_EQ(pairs[2].origin, net::Asn(65002));
}

TEST(DedupePairs, EmptyAndSingleAndAllDistinctAreUntouched) {
  std::vector<PrefixAsPair> pairs;
  dedupe_pairs(pairs);
  EXPECT_TRUE(pairs.empty());

  const auto p1 = net::Prefix::parse("192.0.2.0/24").value();
  pairs.push_back({p1, net::Asn(64512), {}});
  dedupe_pairs(pairs);
  ASSERT_EQ(pairs.size(), 1u);

  pairs.push_back({p1, net::Asn(64513), {}});
  dedupe_pairs(pairs);
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(DomainRecord, PrimaryPrefersWww) {
  DomainRecord record;
  record.www.resolved = true;
  record.www.address_count = 1;
  record.apex.resolved = true;
  record.apex.address_count = 2;
  EXPECT_EQ(&record.primary(), &record.www);
  record.www.resolved = false;
  EXPECT_EQ(&record.primary(), &record.apex);
}

}  // namespace
}  // namespace ripki::core
