// Sampling CPU profiler: start/stop lifecycle and SIGPROF exclusivity,
// sample capture under real CPU load, folded/JSON export shape, windowed
// (sequence-based) exports for the always-on mode, and the /pprofz
// parameter validation in obs::profile_capture.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace ripki;

/// Burns CPU on the calling thread until the profiler has captured at
/// least `want` samples or `budget` of wall time elapses. ITIMER_PROF
/// fires on *consumed CPU time*, so the work loop must actually compute.
std::uint64_t burn_until_samples(const obs::SamplingProfiler& profiler,
                                 std::uint64_t want,
                                 std::chrono::seconds budget =
                                     std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  volatile std::uint64_t sink = 0;
  while (profiler.samples() < want &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 100'000; ++i) sink = sink + static_cast<std::uint64_t>(i) * 2654435761u;
  }
  return sink;
}

TEST(SamplingProfiler, StartStopLifecycle) {
  obs::SamplingProfiler profiler;
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(profiler.hz(), 100u);

  ASSERT_TRUE(profiler.start());
  EXPECT_TRUE(profiler.running());

  profiler.stop();
  EXPECT_FALSE(profiler.running());
  profiler.stop();  // idempotent
  EXPECT_FALSE(profiler.running());

  // Restart after stop works.
  ASSERT_TRUE(profiler.start());
  EXPECT_TRUE(profiler.running());
  profiler.stop();
}

TEST(SamplingProfiler, OnlyOneProfilerOwnsSigprof) {
  obs::SamplingProfiler first;
  obs::SamplingProfiler second;
  ASSERT_TRUE(first.start());
  // SIGPROF is process-global: a second instance must refuse to arm
  // rather than steal the signal.
  EXPECT_FALSE(second.start());
  EXPECT_FALSE(second.running());
  first.stop();
  // Once the first releases the signal, the second can arm.
  EXPECT_TRUE(second.start());
  second.stop();
}

TEST(SamplingProfiler, CapturesStacksUnderCpuLoad) {
  obs::SamplingProfiler profiler(
      obs::SamplingProfiler::Options{.hz = 500, .capacity = 1 << 14});
  ASSERT_TRUE(profiler.start());
  burn_until_samples(profiler, 10);
  profiler.stop();

  ASSERT_GT(profiler.samples(), 0u)
      << "no SIGPROF samples landed despite CPU load";

  const obs::SamplingProfiler::Profile profile = profiler.profile();
  EXPECT_EQ(profile.samples, profiler.samples());
  EXPECT_EQ(profile.hz, 500u);
  ASSERT_FALSE(profile.stacks.empty());
  // Stacks are aggregated by identical frame sequences, sorted by count
  // descending, and every stack carries at least one symbolised frame.
  std::uint64_t previous = profile.stacks.front().count;
  std::uint64_t total = 0;
  for (const auto& stack : profile.stacks) {
    EXPECT_LE(stack.count, previous);
    EXPECT_FALSE(stack.frames.empty());
    for (const auto& frame : stack.frames) EXPECT_FALSE(frame.empty());
    previous = stack.count;
    total += stack.count;
  }
  EXPECT_EQ(total, profile.samples);

  // Folded export: "frame;frame;... count" lines, flamegraph-ready.
  const std::string folded = profiler.folded();
  ASSERT_FALSE(folded.empty());
  EXPECT_NE(folded.find(' '), std::string::npos);
  EXPECT_EQ(folded.back(), '\n');

  const std::string json = profiler.json();
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  EXPECT_NE(json.find("\"hz\":500"), std::string::npos);
  EXPECT_NE(json.find("\"stacks\""), std::string::npos);
}

TEST(SamplingProfiler, WindowedExportOnlyCoversNewSamples) {
  obs::SamplingProfiler profiler(
      obs::SamplingProfiler::Options{.hz = 500, .capacity = 1 << 14});
  ASSERT_TRUE(profiler.start());
  burn_until_samples(profiler, 5);

  // The always-on mode: snapshot the sequence mid-run, keep profiling,
  // then export only the window. Exports are safe while running.
  const std::uint64_t mark = profiler.sequence();
  const std::uint64_t before_window = profiler.samples();
  burn_until_samples(profiler, before_window + 5);
  profiler.stop();

  const obs::SamplingProfiler::Profile full = profiler.profile();
  const obs::SamplingProfiler::Profile window = profiler.profile(mark);
  EXPECT_GT(full.samples, 0u);
  EXPECT_GT(window.samples, 0u);
  EXPECT_LT(window.samples, full.samples)
      << "window must exclude the samples captured before the mark";
  EXPECT_EQ(window.samples + mark, full.samples)
      << "sequence numbers the samples densely";
}

TEST(SamplingProfiler, ClearResetsBufferWhenStopped) {
  obs::SamplingProfiler profiler(
      obs::SamplingProfiler::Options{.hz = 500, .capacity = 1 << 14});
  ASSERT_TRUE(profiler.start());
  burn_until_samples(profiler, 3);
  profiler.stop();
  ASSERT_GT(profiler.samples(), 0u);

  profiler.clear();
  EXPECT_EQ(profiler.samples(), 0u);
  EXPECT_EQ(profiler.dropped(), 0u);
  EXPECT_TRUE(profiler.profile().stacks.empty());
  EXPECT_TRUE(profiler.folded().empty());
}

TEST(SamplingProfiler, DropsBeyondCapacityInsteadOfGrowing) {
  // Two slots: nearly every sample under sustained load is a drop, but
  // the buffered ones stay intact.
  obs::SamplingProfiler profiler(
      obs::SamplingProfiler::Options{.hz = 1000, .capacity = 2});
  ASSERT_TRUE(profiler.start());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  volatile std::uint64_t sink = 0;
  while (profiler.dropped() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 100'000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  }
  profiler.stop();

  EXPECT_GT(profiler.dropped(), 0u);
  EXPECT_LE(profiler.samples(), 2u);
  const obs::SamplingProfiler::Profile profile = profiler.profile();
  EXPECT_EQ(profile.dropped, profiler.dropped());
  std::uint64_t total = 0;
  for (const auto& stack : profile.stacks) total += stack.count;
  EXPECT_EQ(total, profile.samples);
}

TEST(SamplingProfiler, SymbolizeFrameResolvesKnownAddress) {
  // An exported function in this binary (built with -rdynamic) should
  // symbolise to its name; a garbage address still yields a stable
  // hex-ish placeholder instead of an empty string. Frames are return
  // addresses, which symbolize_frame steps back by one byte — so hand it
  // an address one past the function's entry, like a real call site.
  const std::string known = obs::symbolize_frame(
      reinterpret_cast<const char*>(&obs::symbolize_frame) + 1);
  EXPECT_FALSE(known.empty());
  EXPECT_NE(known.find("symbolize_frame"), std::string::npos) << known;

  const std::string unknown =
      obs::symbolize_frame(reinterpret_cast<const void*>(0x12345));
  EXPECT_FALSE(unknown.empty());
}

// --- /pprofz parameter handling ---------------------------------------------

TEST(ProfileCapture, NoProfilerWiredAnswers503) {
  const serve::HttpResponse response = obs::profile_capture(nullptr, "");
  EXPECT_EQ(response.status, 503);
}

TEST(ProfileCapture, MalformedParametersAnswer400) {
  obs::SamplingProfiler profiler;
  EXPECT_EQ(obs::profile_capture(&profiler, "seconds=abc").status, 400);
  EXPECT_EQ(obs::profile_capture(&profiler, "format=xml").status, 400);
  EXPECT_EQ(obs::profile_capture(&profiler, "seconds=2&format=pprof").status,
            400);
}

TEST(ProfileCapture, BusySigprofAnswers503) {
  // Another profiler owns SIGPROF, and the capture target is not running:
  // the one-shot start fails, which must surface as 503, not a hang.
  obs::SamplingProfiler owner;
  ASSERT_TRUE(owner.start());
  obs::SamplingProfiler target;
  const serve::HttpResponse response =
      obs::profile_capture(&target, "seconds=1");
  EXPECT_EQ(response.status, 503);
  owner.stop();
}

TEST(ProfileCapture, OneShotCaptureReturnsFoldedBody) {
  obs::SamplingProfiler profiler(
      obs::SamplingProfiler::Options{.hz = 500, .capacity = 1 << 14});
  // Keep a core busy so the 1-second CPU-time window accumulates samples.
  std::atomic<bool> stop{false};
  std::thread load([&stop] {
    volatile std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 10'000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    }
  });

  const serve::HttpResponse response =
      obs::profile_capture(&profiler, "seconds=1");
  stop.store(true);
  load.join();

  EXPECT_EQ(response.status, 200);
  EXPECT_FALSE(profiler.running()) << "one-shot capture must stop the profiler";
  EXPECT_EQ(response.content_type.find("text/plain"), 0u);
  EXPECT_FALSE(response.body.empty());

  // JSON format rides the same path.
  const serve::HttpResponse json =
      obs::profile_capture(&profiler, "seconds=1&format=json");
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"profile\""), std::string::npos);
}

}  // namespace
