#include <gtest/gtest.h>

#include "net/asn.hpp"
#include "net/ip.hpp"
#include "net/prefix.hpp"
#include "net/special.hpp"

namespace ripki::net {
namespace {

// --- IPv4 parsing/formatting --------------------------------------------------

TEST(Ipv4, ParseAndFormat) {
  const auto addr = IpAddress::parse("192.0.2.55");
  ASSERT_TRUE(addr.ok());
  EXPECT_TRUE(addr.value().is_v4());
  EXPECT_EQ(addr.value().to_string(), "192.0.2.55");
  EXPECT_EQ(addr.value().v4_value(), 0xC0000237u);
}

TEST(Ipv4, RejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1.2.3.x",
                          "01a.2.3.4", "1..2.3", " 1.2.3.4"}) {
    EXPECT_FALSE(IpAddress::parse(bad).ok()) << bad;
  }
}

TEST(Ipv4, ConstructorsAgree) {
  EXPECT_EQ(IpAddress::v4(0x0A000001), IpAddress::v4(10, 0, 0, 1));
}

TEST(Ipv4, BitIndexingMsbFirst) {
  const auto addr = IpAddress::v4(0x80000001);
  EXPECT_TRUE(addr.bit(0));
  EXPECT_FALSE(addr.bit(1));
  EXPECT_TRUE(addr.bit(31));
  EXPECT_EQ(addr.width(), 32);
}

// --- IPv6 parsing/formatting ---------------------------------------------------

TEST(Ipv6, ParseFullForm) {
  const auto addr = IpAddress::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(addr.ok());
  EXPECT_TRUE(addr.value().is_v6());
  EXPECT_EQ(addr.value().to_string(), "2001:db8::1");
}

TEST(Ipv6, ParseCompressed) {
  const auto a = IpAddress::parse("2a00::1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().to_string(), "2a00::1");

  const auto b = IpAddress::parse("::");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().to_string(), "::");

  const auto c = IpAddress::parse("::1");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().to_string(), "::1");

  const auto d = IpAddress::parse("fe80::");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().to_string(), "fe80::");
}

TEST(Ipv6, CompressesLongestZeroRun) {
  const auto addr = IpAddress::parse("1:0:0:2:0:0:0:3");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value().to_string(), "1:0:0:2::3");
}

TEST(Ipv6, SingleZeroGroupNotCompressed) {
  const auto addr = IpAddress::parse("1:0:2:3:4:5:6:7");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value().to_string(), "1:0:2:3:4:5:6:7");
}

TEST(Ipv6, RejectsMalformed) {
  for (const char* bad : {":", ":::", "1::2::3", "1:2:3:4:5:6:7", "g::1",
                          "1:2:3:4:5:6:7:8:9", "12345::1"}) {
    EXPECT_FALSE(IpAddress::parse(bad).ok()) << bad;
  }
}

TEST(Ipv6, RoundTripsRandomisedForms) {
  for (const char* text : {"2001:db8::8:800:200c:417a", "ff01::101",
                           "2400:cb00:2048:1::6813:c166"}) {
    const auto addr = IpAddress::parse(text);
    ASSERT_TRUE(addr.ok()) << text;
    const auto again = IpAddress::parse(addr.value().to_string());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value(), addr.value());
  }
}

// --- masking -------------------------------------------------------------------

TEST(IpAddress, MaskClearsHostBits) {
  const auto addr = IpAddress::v4(192, 0, 2, 255);
  EXPECT_EQ(addr.masked(24).to_string(), "192.0.2.0");
  EXPECT_EQ(addr.masked(31).to_string(), "192.0.2.254");
  EXPECT_EQ(addr.masked(0).to_string(), "0.0.0.0");
  EXPECT_EQ(addr.masked(32), addr);
}

// --- Prefix ---------------------------------------------------------------------

TEST(Prefix, ParseCanonicalises) {
  const auto p = Prefix::parse("192.0.2.77/24");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().to_string(), "192.0.2.0/24");
  EXPECT_EQ(p.value().length(), 24);
}

TEST(Prefix, ParseRejectsBadInput) {
  for (const char* bad : {"192.0.2.0", "192.0.2.0/33", "192.0.2.0/-1",
                          "x/24", "2001:db8::/129", "192.0.2.0/"}) {
    EXPECT_FALSE(Prefix::parse(bad).ok()) << bad;
  }
}

TEST(Prefix, ContainsAddress) {
  const auto p = Prefix::parse("10.0.0.0/8").value();
  EXPECT_TRUE(p.contains(IpAddress::v4(10, 255, 1, 2)));
  EXPECT_FALSE(p.contains(IpAddress::v4(11, 0, 0, 1)));
  EXPECT_FALSE(p.contains(IpAddress::parse("2001:db8::1").value()));  // family
}

TEST(Prefix, ContainsPrefix) {
  const auto p8 = Prefix::parse("10.0.0.0/8").value();
  const auto p16 = Prefix::parse("10.5.0.0/16").value();
  EXPECT_TRUE(p8.contains(p16));
  EXPECT_FALSE(p16.contains(p8));
  EXPECT_TRUE(p8.contains(p8));
  const auto other = Prefix::parse("192.168.0.0/16").value();
  EXPECT_FALSE(p8.contains(other));
}

TEST(Prefix, Overlaps) {
  const auto a = Prefix::parse("10.0.0.0/8").value();
  const auto b = Prefix::parse("10.64.0.0/10").value();
  const auto c = Prefix::parse("172.16.0.0/12").value();
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const auto def = Prefix::parse("0.0.0.0/0").value();
  EXPECT_TRUE(def.contains(IpAddress::v4(255, 255, 255, 255)));
  EXPECT_TRUE(def.contains(Prefix::parse("192.0.2.0/24").value()));
}

TEST(Prefix, V6Containment) {
  const auto p = Prefix::parse("2a00::/12").value();
  EXPECT_TRUE(p.contains(IpAddress::parse("2a0f:1::1").value()));
  EXPECT_FALSE(p.contains(IpAddress::parse("2c00::1").value()));
}

TEST(Prefix, HashDistinguishesLength) {
  const auto a = Prefix::parse("10.0.0.0/8").value();
  const auto b = Prefix::parse("10.0.0.0/16").value();
  EXPECT_NE(a, b);
  EXPECT_NE(PrefixHash{}(a), PrefixHash{}(b));
}

// --- special-purpose registry ---------------------------------------------------

TEST(Special, V4Blocks) {
  EXPECT_TRUE(is_special_purpose(IpAddress::v4(127, 0, 0, 1)));
  EXPECT_TRUE(is_special_purpose(IpAddress::v4(10, 1, 2, 3)));
  EXPECT_TRUE(is_special_purpose(IpAddress::v4(192, 168, 1, 1)));
  EXPECT_TRUE(is_special_purpose(IpAddress::v4(172, 16, 0, 1)));
  EXPECT_TRUE(is_special_purpose(IpAddress::v4(169, 254, 0, 1)));
  EXPECT_TRUE(is_special_purpose(IpAddress::v4(224, 0, 0, 5)));       // multicast
  EXPECT_TRUE(is_special_purpose(IpAddress::v4(255, 255, 255, 255)));
  EXPECT_TRUE(is_special_purpose(IpAddress::v4(198, 51, 100, 7)));    // TEST-NET-2
  EXPECT_TRUE(is_special_purpose(IpAddress::v4(100, 64, 0, 1)));      // CGN
}

TEST(Special, V4GloballyRoutableIsNot) {
  EXPECT_FALSE(is_special_purpose(IpAddress::v4(8, 8, 8, 8)));
  EXPECT_FALSE(is_special_purpose(IpAddress::v4(23, 1, 2, 3)));
  EXPECT_FALSE(is_special_purpose(IpAddress::v4(172, 32, 0, 1)));  // just past /12
  EXPECT_FALSE(is_special_purpose(IpAddress::v4(100, 128, 0, 1))); // past /10
}

TEST(Special, V6Blocks) {
  EXPECT_TRUE(is_special_purpose(IpAddress::parse("::1").value()));
  EXPECT_TRUE(is_special_purpose(IpAddress::parse("fe80::1").value()));
  EXPECT_TRUE(is_special_purpose(IpAddress::parse("fc00::1").value()));
  EXPECT_TRUE(is_special_purpose(IpAddress::parse("ff02::1").value()));
  EXPECT_TRUE(is_special_purpose(IpAddress::parse("2001:db8::5").value()));
  EXPECT_FALSE(is_special_purpose(IpAddress::parse("2a00:1450::1").value()));
  EXPECT_FALSE(is_special_purpose(IpAddress::parse("2600::1").value()));
}

TEST(Special, NamesAreInformative) {
  EXPECT_EQ(special_purpose_name(IpAddress::v4(127, 0, 0, 1)), "loopback");
  EXPECT_TRUE(special_purpose_name(IpAddress::v4(8, 8, 8, 8)).empty());
}

// --- Asn -------------------------------------------------------------------------

TEST(Asn, StrongTypeBasics) {
  const Asn a(64512);
  EXPECT_EQ(a.value(), 64512u);
  EXPECT_EQ(a.to_string(), "AS64512");
  EXPECT_LT(Asn(1), Asn(2));
  EXPECT_EQ(Asn(7), Asn(7));
  EXPECT_EQ(AsnHash{}(Asn(7)), AsnHash{}(Asn(7)));
}

}  // namespace
}  // namespace ripki::net
