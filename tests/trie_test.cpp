#include <gtest/gtest.h>

#include "trie/prefix_trie.hpp"
#include "util/prng.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace ripki::trie {
namespace {

net::Prefix P(const std::string& text) {
  auto p = net::Prefix::parse(text);
  EXPECT_TRUE(p.ok()) << text;
  return p.value();
}

net::IpAddress A(const std::string& text) {
  auto a = net::IpAddress::parse(text);
  EXPECT_TRUE(a.ok()) << text;
  return a.value();
}

TEST(PrefixTrie, InsertAndFindExact) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("10.0.0.0/16"), 2);
  trie.insert(P("192.168.0.0/16"), 3);

  EXPECT_EQ(trie.size(), 3u);
  ASSERT_NE(trie.find_exact(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find_exact(P("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.find_exact(P("10.0.0.0/16")), 2);
  EXPECT_EQ(*trie.find_exact(P("192.168.0.0/16")), 3);
  EXPECT_EQ(trie.find_exact(P("10.0.0.0/12")), nullptr);
  EXPECT_EQ(trie.find_exact(P("11.0.0.0/8")), nullptr);
}

TEST(PrefixTrie, InsertReplacesValue) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("10.0.0.0/8"), 9);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find_exact(P("10.0.0.0/8")), 9);
}

TEST(PrefixTrie, CoveringReturnsShortestFirst) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.1.0.0/16"), 16);
  trie.insert(P("10.1.2.0/24"), 24);
  trie.insert(P("10.2.0.0/16"), 99);  // not covering 10.1.2.3

  const auto matches = trie.covering(A("10.1.2.3"));
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(*matches[0].value, 8);
  EXPECT_EQ(*matches[1].value, 16);
  EXPECT_EQ(*matches[2].value, 24);
  EXPECT_EQ(matches[0].prefix, P("10.0.0.0/8"));
}

TEST(PrefixTrie, CoveringOfPrefixStopsAtTargetLength) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.1.0.0/16"), 16);
  trie.insert(P("10.1.2.0/24"), 24);

  const auto matches = trie.covering(P("10.1.0.0/16"));
  ASSERT_EQ(matches.size(), 2u);  // the /24 is more specific than the target
  EXPECT_EQ(*matches[0].value, 8);
  EXPECT_EQ(*matches[1].value, 16);
}

TEST(PrefixTrie, LongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 0);
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.128.0.0/9"), 9);

  const auto best = trie.longest_match(A("10.200.0.1"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best->value, 9);

  const auto fallback = trie.longest_match(A("99.0.0.1"));
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(*fallback->value, 0);
}

TEST(PrefixTrie, NoMatchReturnsEmpty) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  EXPECT_TRUE(trie.covering(A("11.0.0.1")).empty());
  EXPECT_FALSE(trie.longest_match(A("11.0.0.1")).has_value());
}

TEST(PrefixTrie, FamiliesAreSeparate) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 4);
  trie.insert(P("::/0"), 6);
  EXPECT_EQ(*trie.covering(A("8.8.8.8")).front().value, 4);
  EXPECT_EQ(*trie.covering(A("2a00::1")).front().value, 6);
  EXPECT_EQ(trie.size(), 2u);
}

TEST(PrefixTrie, V6CoveringChain) {
  PrefixTrie<int> trie;
  trie.insert(P("2a00::/12"), 12);
  trie.insert(P("2a00:1450::/32"), 32);
  trie.insert(P("2a00:1450:4001::/48"), 48);
  const auto matches = trie.covering(A("2a00:1450:4001:82f::200e"));
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(*matches.back().value, 48);
}

TEST(PrefixTrie, SplitNodesDoNotLeakValues) {
  PrefixTrie<int> trie;
  // Inserting two diverging prefixes creates an internal split node that
  // must not appear as a match.
  trie.insert(P("10.0.0.0/16"), 1);
  trie.insert(P("10.1.0.0/16"), 2);
  const auto matches = trie.covering(A("10.0.0.1"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(*matches[0].value, 1);
}

TEST(PrefixTrie, InsertOnExistingSplitNode) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/16"), 1);
  trie.insert(P("10.1.0.0/16"), 2);
  trie.insert(P("10.0.0.0/15"), 3);  // lands exactly on the split node
  EXPECT_EQ(trie.size(), 3u);
  ASSERT_NE(trie.find_exact(P("10.0.0.0/15")), nullptr);
  EXPECT_EQ(*trie.find_exact(P("10.0.0.0/15")), 3);
  EXPECT_EQ(trie.covering(A("10.1.2.3")).size(), 2u);  // /15 and /16
}

TEST(PrefixTrie, VisitEnumeratesAll) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("10.1.0.0/16"), 2);
  trie.insert(P("2a00::/12"), 3);
  int count = 0;
  int sum = 0;
  trie.visit([&](const net::Prefix&, const int& v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sum, 6);
}

TEST(PrefixTrie, Clear) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.find_exact(P("10.0.0.0/8")), nullptr);
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 7);
  EXPECT_EQ(trie.covering(A("1.2.3.4")).size(), 1u);
  EXPECT_EQ(trie.covering(A("255.255.255.255")).size(), 1u);
}

// Property test: the trie must agree with a brute-force scan over random
// prefix sets, for both covering() and longest_match().
class PrefixTrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTrieProperty, AgreesWithBruteForce) {
  util::Prng prng(GetParam());
  PrefixTrie<std::size_t> trie;
  std::vector<net::Prefix> stored;

  for (int i = 0; i < 300; ++i) {
    const int length = 4 + static_cast<int>(prng.uniform(25));  // 4..28
    const auto addr = net::IpAddress::v4(static_cast<std::uint32_t>(prng.next_u64()));
    const net::Prefix prefix(addr, length);
    if (trie.find_exact(prefix) == nullptr) {
      stored.push_back(prefix);
      trie.insert(prefix, stored.size() - 1);
    }
  }

  for (int i = 0; i < 500; ++i) {
    const auto addr = net::IpAddress::v4(static_cast<std::uint32_t>(prng.next_u64()));

    std::vector<net::Prefix> expected;
    for (const auto& prefix : stored) {
      if (prefix.contains(addr)) expected.push_back(prefix);
    }
    std::sort(expected.begin(), expected.end(),
              [](const net::Prefix& a, const net::Prefix& b) {
                return a.length() < b.length();
              });

    const auto matches = trie.covering(addr);
    ASSERT_EQ(matches.size(), expected.size());
    for (std::size_t m = 0; m < matches.size(); ++m) {
      EXPECT_EQ(matches[m].prefix, expected[m]);
    }

    const auto best = trie.longest_match(addr);
    if (expected.empty()) {
      EXPECT_FALSE(best.has_value());
    } else {
      ASSERT_TRUE(best.has_value());
      EXPECT_EQ(best->prefix, expected.back());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PrefixTrieProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- erase (withdraw support for the incremental RIB) ------------------------

TEST(PrefixTrie, EraseReturnsValueAndShrinks) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.1.0.0/16"), 16);

  const auto out = trie.erase(P("10.1.0.0/16"));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 16);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.find_exact(P("10.1.0.0/16")), nullptr);
  ASSERT_NE(trie.find_exact(P("10.0.0.0/8")), nullptr);
}

TEST(PrefixTrie, EraseAbsentPrefixIsNullopt) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  EXPECT_FALSE(trie.erase(P("10.2.0.0/16")).has_value());
  EXPECT_FALSE(trie.erase(P("11.0.0.0/8")).has_value());
  EXPECT_EQ(trie.size(), 1u);
  // Erasing twice: the second call finds a valueless node.
  EXPECT_TRUE(trie.erase(P("10.0.0.0/8")).has_value());
  EXPECT_FALSE(trie.erase(P("10.0.0.0/8")).has_value());
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, ErasedNodeIsSkippedByTraversals) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.1.0.0/16"), 16);
  trie.insert(P("10.1.2.0/24"), 24);

  trie.erase(P("10.1.0.0/16"));

  const auto matches = trie.covering(A("10.1.2.3"));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].prefix, P("10.0.0.0/8"));
  EXPECT_EQ(matches[1].prefix, P("10.1.2.0/24"));

  const auto best = trie.longest_match(A("10.1.200.1"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->prefix, P("10.0.0.0/8"));

  std::size_t visited = 0;
  trie.visit([&](const net::Prefix&, const int&) { ++visited; });
  EXPECT_EQ(visited, 2u);
}

TEST(PrefixTrie, ReinsertAfterEraseRevivesNode) {
  PrefixTrie<int> trie;
  trie.insert(P("10.1.0.0/16"), 1);
  trie.insert(P("10.2.0.0/16"), 2);  // forces a /15-ish split parent
  trie.erase(P("10.1.0.0/16"));
  EXPECT_EQ(trie.size(), 1u);

  trie.insert(P("10.1.0.0/16"), 7);
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find_exact(P("10.1.0.0/16")), nullptr);
  EXPECT_EQ(*trie.find_exact(P("10.1.0.0/16")), 7);
  const auto best = trie.longest_match(A("10.1.0.9"));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->prefix, P("10.1.0.0/16"));
}

}  // namespace
}  // namespace ripki::trie
