// Tests for the extension features: the DNSSEC adoption probe (paper §7
// future work), dataset CSV export, and the ablation knobs.
#include <gtest/gtest.h>

#include <sstream>

#include "core/export.hpp"
#include "core/pipeline.hpp"
#include "core/reports.hpp"
#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "web/ecosystem.hpp"

namespace ripki {
namespace {

// --- DNSKEY record codec ------------------------------------------------------

TEST(Dnskey, MessageRoundTrip) {
  dns::Message m;
  m.id = 5;
  m.is_response = true;
  const auto name = dns::DnsName::parse("signed.example").value();
  dns::DnskeyData key;
  key.flags = 257;  // KSK
  key.algorithm = 13;
  key.public_key = "\x01\x02\x03\xff";
  m.answers.push_back(
      dns::ResourceRecord{name, dns::RecordType::kDnskey, 3600, key});

  const auto decoded = dns::decode(dns::encode(m));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ASSERT_EQ(decoded.value().answers.size(), 1u);
  const auto& rr = decoded.value().answers[0];
  EXPECT_EQ(rr.type, dns::RecordType::kDnskey);
  EXPECT_EQ(std::get<dns::DnskeyData>(rr.rdata), key);
}

TEST(Dnskey, RejectsTruncatedRdata) {
  dns::Message m;
  m.id = 5;
  m.is_response = true;
  const auto name = dns::DnsName::parse("signed.example").value();
  m.answers.push_back(dns::ResourceRecord{name, dns::RecordType::kDnskey, 3600,
                                          dns::DnskeyData{}});
  auto bytes = dns::encode(m);
  bytes.pop_back();  // eat into the rdata
  EXPECT_FALSE(dns::decode(bytes).ok());
}

// --- ecosystem + pipeline DNSSEC integration ------------------------------------

web::EcosystemConfig small_config() {
  web::EcosystemConfig config;
  config.domain_count = 6'000;
  config.isp_count = 300;
  config.hoster_count = 80;
  config.enterprise_count = 300;
  config.transit_count = 40;
  // Crank DNSSEC up so a small sample gives stable counts.
  config.dnssec_top = 0.15;
  config.dnssec_tail = 0.30;
  return config;
}

class ExtensionsPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eco_ = web::Ecosystem::generate(small_config()).release();
    core::MeasurementPipeline pipeline(*eco_, core::PipelineConfig{});
    dataset_ = new core::Dataset(pipeline.run());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete eco_;
    dataset_ = nullptr;
    eco_ = nullptr;
  }
  static web::Ecosystem* eco_;
  static core::Dataset* dataset_;
};

web::Ecosystem* ExtensionsPipeline::eco_ = nullptr;
core::Dataset* ExtensionsPipeline::dataset_ = nullptr;

TEST_F(ExtensionsPipeline, DnssecProbeMatchesGroundTruth) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < dataset_->domains.size(); ++i) {
    const bool truth = eco_->plan(i).dnssec_signed && !eco_->plan(i).invalid_dns;
    const bool probed = dataset_->domains[i].dnssec_signed;
    if (truth != probed) ++mismatches;
  }
  // invalid_dns domains may or may not answer DNSKEY; everything else must
  // agree exactly.
  EXPECT_LT(mismatches, dataset_->domains.size() / 200);
  EXPECT_GT(dataset_->counters.dnssec_signed_domains,
            dataset_->domains.size() / 10);
}

TEST_F(ExtensionsPipeline, DnssecReportRatesAreConsistent) {
  const auto summary = core::reports::dnssec_summary(*dataset_);
  EXPECT_GT(summary.dnssec_rate, 0.10);
  EXPECT_LT(summary.dnssec_rate, 0.40);
  EXPECT_GT(summary.rpki_rate, 0.0);
  EXPECT_LE(summary.both_rate, summary.dnssec_rate);
  EXPECT_LE(summary.both_rate, summary.rpki_rate);

  const auto rows = core::reports::dnssec_vs_rpki(*dataset_, 250'000);
  ASSERT_EQ(rows.size(), 4u);
  double weighted = 0.0;
  std::uint64_t total = 0;
  for (const auto& row : rows) {
    weighted += row.dnssec_fraction * static_cast<double>(row.domains);
    total += row.domains;
    EXPECT_LE(row.both_fraction, row.dnssec_fraction + 1e-12);
  }
  EXPECT_NEAR(weighted / static_cast<double>(total), summary.dnssec_rate, 1e-9);
}

TEST_F(ExtensionsPipeline, DnssecAdoptionRisesTowardTail) {
  const auto rows = core::reports::dnssec_vs_rpki(*dataset_, 500'000);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_LT(rows[0].dnssec_fraction, rows[1].dnssec_fraction);
}

// --- CSV export ----------------------------------------------------------------

TEST_F(ExtensionsPipeline, DomainsCsvHasHeaderAndAllRows) {
  std::ostringstream os;
  core::export_domains_csv(*dataset_, os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("rank,domain,excluded_dns,dnssec_signed,", 0), 0u);
  const auto lines = static_cast<std::size_t>(
      std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(lines, dataset_->domains.size() + 1);  // header + rows
}

TEST_F(ExtensionsPipeline, PairsCsvMatchesPairCount) {
  std::ostringstream os;
  core::export_pairs_csv(*dataset_, os);
  const std::string out = os.str();
  const auto lines = static_cast<std::size_t>(
      std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(lines,
            1 + dataset_->counters.pairs_www + dataset_->counters.pairs_apex);
  EXPECT_NE(out.find("www,"), std::string::npos);
  EXPECT_NE(out.find("apex,"), std::string::npos);
  EXPECT_NE(out.find("not-found"), std::string::npos);
}

TEST_F(ExtensionsPipeline, CountersCsvRoundTripsKeyNumbers) {
  std::ostringstream os;
  core::export_counters_csv(*dataset_, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("domains_total," +
                     std::to_string(dataset_->counters.domains_total)),
            std::string::npos);
  EXPECT_NE(out.find("dnssec_signed_domains,"), std::string::npos);
}

TEST(ExportCsv, EscapesSpecialCharacters) {
  core::Dataset dataset;
  dataset.rank_space = 10;
  core::DomainRecord record;
  record.rank = 1;
  record.name = "we\"ird,name.example";
  dataset.domains.append(record);
  std::ostringstream os;
  core::export_domains_csv(dataset, os);
  EXPECT_NE(os.str().find("\"we\"\"ird,name.example\""), std::string::npos);
}

// --- ablation knobs ---------------------------------------------------------------

TEST(AblationKnobs, ZeroThirdPartyPlacementKillsCdnInheritance) {
  auto config = small_config();
  config.cdn_third_party_scale = 0.0;
  const auto eco = web::Ecosystem::generate(config);
  // Every CDN-variant server must sit in a CDN-category AS.
  std::size_t cdn_servers = 0;
  for (std::size_t i = 0; i < eco->domain_count(); ++i) {
    const auto& plan = eco->plan(i);
    if (plan.cdn_id == web::kNoCdn || !plan.www.on_cdn) continue;
    for (std::uint8_t s = 0; s < plan.www.server_count; ++s) {
      const auto& prefix = eco->prefixes()[plan.www.prefix_ids[s]];
      EXPECT_EQ(eco->registry().at(prefix.owner_as).category,
                web::AsCategory::kCdn);
      ++cdn_servers;
    }
  }
  EXPECT_GT(cdn_servers, 0u);
}

TEST(AblationKnobs, ZeroMisconfigYieldsNoMaxlenInvalids) {
  auto config = small_config();
  config.roa_maxlen_misconfig_probability = 0.0;
  config.wrong_origin_fraction = 0.0;
  const auto eco = web::Ecosystem::generate(config);
  core::MeasurementPipeline pipeline(*eco, core::PipelineConfig{});
  const auto dataset = pipeline.run();
  const auto summary = core::reports::figure4_summary(dataset);
  EXPECT_DOUBLE_EQ(summary.mean_invalid, 0.0);
  EXPECT_GT(summary.mean_coverage, 0.0);
}

TEST(AblationKnobs, SingleCnameAliasesDoNotTriggerChainHeuristic) {
  auto config = small_config();
  config.single_cname_alias_fraction = 0.5;
  config.cdn_share_top = 0.0;
  config.cdn_share_tail = 0.0;  // no CDNs at all
  config.hoster_chain_fraction = 0.0;
  const auto eco = web::Ecosystem::generate(config);
  core::MeasurementPipeline pipeline(*eco, core::PipelineConfig{});
  const auto dataset = pipeline.run();

  const core::ChainCdnClassifier chain;
  std::size_t single = 0;
  std::size_t flagged = 0;
  for (const auto record : dataset.rows()) {
    if (record.www.cname_hops == 1) ++single;
    if (chain.is_cdn(record)) ++flagged;
  }
  EXPECT_GT(single, dataset.domains.size() / 4);  // aliases are common
  EXPECT_EQ(flagged, 0u);                         // none fool the heuristic
}

}  // namespace
}  // namespace ripki
