// Scheduler X-ray telemetry: lane lifecycle and recording semantics,
// ring-wrap bounds, JSON/trace export shape, queue-depth sampling, and —
// against a real work-stealing pool under contention — the counter
// identities the ISSUE demands: own-pops + steals must sum to tasks
// executed, and idle-park intervals must never overlap run intervals on
// the same worker. The contention suites run under TSan in CI.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/sched.hpp"
#include "obs/trace.hpp"
#include "web/ecosystem.hpp"

namespace ripki {
namespace {

using obs::SchedTelemetry;
using obs::SweepStage;

TEST(SchedTelemetryTest, BeginRunSizesLanesPlusExternal) {
  SchedTelemetry sched;
  EXPECT_EQ(sched.lanes(), 0u);
  sched.begin_run(4);
  EXPECT_EQ(sched.lanes(), 5u);
  EXPECT_EQ(sched.external_lane(), 4u);
  sched.begin_run(0);  // serial window: only the external lane
  EXPECT_EQ(sched.lanes(), 1u);
  EXPECT_EQ(sched.external_lane(), 0u);
}

TEST(SchedTelemetryTest, RecordersAreNoOpsWithoutAttachedLane) {
  SchedTelemetry sched;
  sched.begin_run(2);
  ASSERT_FALSE(sched.attached());
  sched.on_own_pop();
  sched.on_task_run(0, 100);
  sched.on_idle(100, 200);
  sched.on_steal(true, 200, 210);
  sched.on_stage(SweepStage::kDns, 0, 50);
  for (const auto& lane : sched.snapshot().lanes) {
    EXPECT_EQ(lane.tasks, 0u);
    EXPECT_EQ(lane.steals, 0u);
    EXPECT_TRUE(lane.events.empty());
  }
}

TEST(SchedTelemetryTest, AttachedRecordingAccumulatesOnThatLane) {
  SchedTelemetry sched;
  sched.begin_run(2);
  sched.attach_lane(1);
  ASSERT_TRUE(sched.attached());
  sched.on_own_pop();
  sched.on_task_run(10, 110);
  sched.on_steal(true, 120, 130);
  sched.on_task_run(130, 160);
  sched.on_idle(160, 260);
  sched.on_stage(SweepStage::kValidation, 20, 70);
  sched.detach_lane();
  EXPECT_FALSE(sched.attached());

  const auto snap = sched.snapshot();
  ASSERT_EQ(snap.lanes.size(), 3u);
  const auto& lane = snap.lanes[1];
  EXPECT_EQ(lane.tasks, 2u);
  EXPECT_EQ(lane.own_pops, 1u);
  EXPECT_EQ(lane.steals, 1u);
  EXPECT_EQ(lane.run_ns, (100u + 30u) * 1000u);
  EXPECT_EQ(lane.idle_ns, 100u * 1000u);
  EXPECT_EQ(lane.stage_ns[static_cast<std::size_t>(SweepStage::kValidation)],
            50u * 1000u);
  EXPECT_EQ(lane.last_run_end_us, 160u);
  EXPECT_EQ(lane.events.size(), 5u);  // 2 runs + steal + idle + stage
  // Lanes 0 and 2 stayed untouched.
  EXPECT_EQ(snap.lanes[0].tasks, 0u);
  EXPECT_EQ(snap.lanes[2].tasks, 0u);
}

TEST(SchedTelemetryTest, DetachedThreadStopsRecording) {
  SchedTelemetry sched;
  sched.begin_run(1);
  sched.attach_lane(0);
  sched.on_task_run(0, 10);
  sched.detach_lane();
  sched.on_task_run(20, 30);  // must not land anywhere
  EXPECT_EQ(sched.snapshot().lanes[0].tasks, 1u);
}

TEST(SchedTelemetryTest, RingWrapKeepsNewestAndCountsDrops) {
  SchedTelemetry::Options options;
  options.ring_capacity = 4;
  SchedTelemetry sched(nullptr, options);
  sched.begin_run(0);
  sched.attach_lane(sched.external_lane());
  for (std::uint64_t i = 0; i < 6; ++i) {
    sched.on_task_run(i * 10, i * 10 + 5);
  }
  sched.detach_lane();
  const auto snap = sched.snapshot();
  const auto& lane = snap.lanes[0];
  EXPECT_EQ(lane.tasks, 6u);
  EXPECT_EQ(lane.events_dropped, 2u);
  ASSERT_EQ(lane.events.size(), 4u);
  // Oldest two were overwritten; the survivors are chronological.
  EXPECT_EQ(lane.events.front().begin_us, 20u);
  EXPECT_EQ(lane.events.back().begin_us, 50u);
  for (std::size_t i = 1; i < lane.events.size(); ++i) {
    EXPECT_GE(lane.events[i].begin_us, lane.events[i - 1].begin_us);
  }
}

TEST(SchedTelemetryTest, BeginRunClearsPreviousWindow) {
  SchedTelemetry sched;
  sched.begin_run(1);
  sched.attach_lane(0);
  sched.on_task_run(0, 10);
  sched.detach_lane();
  sched.begin_run(1);
  EXPECT_EQ(sched.snapshot().lanes[0].tasks, 0u);
}

TEST(SchedTelemetryTest, StageScopeChargesOnlyAttachedThreads) {
  SchedTelemetry sched;
  sched.begin_run(0);
  {
    // Not attached: scope must be inert.
    obs::StageScope scope(&sched, SweepStage::kDns);
  }
  EXPECT_EQ(sched.snapshot()
                .lanes[0]
                .stage_ns[static_cast<std::size_t>(SweepStage::kDns)],
            0u);
  {
    obs::LaneScope lane(&sched, sched.external_lane());
    obs::StageScope scope(&sched, SweepStage::kCovering);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto snap = sched.snapshot();
  const auto& lane = snap.lanes[0];
  EXPECT_GT(lane.stage_ns[static_cast<std::size_t>(SweepStage::kCovering)],
            0u);
  ASSERT_EQ(lane.events.size(), 1u);
  EXPECT_EQ(lane.events[0].kind, SchedTelemetry::EventKind::kStage);
  EXPECT_EQ(lane.events[0].stage, SweepStage::kCovering);
}

TEST(SchedTelemetryTest, StageScopeStopIsIdempotent) {
  SchedTelemetry sched;
  sched.begin_run(0);
  obs::LaneScope lane(&sched, 0);
  obs::StageScope scope(&sched, SweepStage::kEmit);
  scope.stop();
  scope.stop();  // second stop and the destructor must not double-charge
  EXPECT_EQ(sched.snapshot().lanes[0].events.size(), 1u);
}

TEST(SchedTelemetryTest, RegistryGetsHistogramsAndHelp) {
  obs::Registry registry;
  SchedTelemetry sched(&registry);
  sched.begin_run(1);
  sched.attach_lane(0);
  sched.on_steal(true, 0, 7);
  sched.on_steal(false, 10, 12);  // failed scans don't observe latency
  sched.on_task_run(20, 120);
  sched.detach_lane();
  EXPECT_EQ(registry.histogram("ripki.exec.steal_latency_us").count(), 1u);
  EXPECT_EQ(registry.histogram("ripki.exec.task_run_us").count(), 1u);
  for (const auto& snap : registry.collect()) {
    EXPECT_FALSE(snap.help.empty()) << snap.name;
  }
}

TEST(SchedTelemetryTest, RenderJsonCarriesTheXrayFields) {
  SchedTelemetry sched;
  sched.begin_run(2);
  sched.attach_lane(0);
  sched.on_own_pop();
  sched.on_task_run(0, 1000);
  sched.on_steal(true, 1000, 1010);
  sched.on_task_run(1010, 1500);
  sched.on_stage(SweepStage::kDns, 100, 600);
  sched.detach_lane();
  const std::string json = sched.render_json();
  for (const char* field :
       {"\"schedz\"", "\"workers\":2", "\"utilization_pct\"",
        "\"steal_ratio\"", "\"idle_tail_ms\"", "\"stage_ms\"", "\"dns\"",
        "\"covering\"", "\"validation\"", "\"emit\"", "\"lanes\"",
        "\"external\":true", "\"queue_depth\"", "\"own_pops\"",
        "\"events_dropped\""}) {
    EXPECT_NE(json.find(field), std::string::npos)
        << field << " missing from " << json;
  }
  // Two tasks, one stolen.
  EXPECT_NE(json.find("\"tasks\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"steal_ratio\":0.5000"), std::string::npos) << json;
}

TEST(SchedTelemetryTest, ChromeTraceNamesWorkerTracks) {
  SchedTelemetry sched;
  sched.begin_run(1);
  sched.attach_lane(0);
  sched.on_task_run(5, 25);
  sched.on_stage(SweepStage::kValidation, 10, 20);
  sched.detach_lane();
  const std::string trace = sched.chrome_trace_json();
  EXPECT_NE(trace.find("\"worker-0\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"external\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ripki-sched\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"run\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"validation\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":2"), std::string::npos);
}

TEST(SchedTelemetryTest, CombinedTraceMergesTracerAndScheduler) {
  obs::EventTracer tracer;
  tracer.begin("pipeline.run", std::chrono::steady_clock::now());
  tracer.end("pipeline.run", std::chrono::steady_clock::now());

  SchedTelemetry sched;
  sched.begin_run(1);
  sched.attach_lane(0);
  sched.on_task_run(0, 50);
  sched.detach_lane();

  const std::string both = obs::combined_trace_json(&tracer, &sched);
  EXPECT_NE(both.find("\"pid\":1"), std::string::npos) << both;
  EXPECT_NE(both.find("\"pid\":2"), std::string::npos) << both;
  EXPECT_NE(both.find("pipeline.run"), std::string::npos);
  EXPECT_NE(both.find("\"worker-0\""), std::string::npos);

  // Either source may be absent.
  const std::string sched_only = obs::combined_trace_json(nullptr, &sched);
  EXPECT_EQ(sched_only.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(sched_only.find("\"pid\":2"), std::string::npos);
  const std::string tracer_only = obs::combined_trace_json(&tracer, nullptr);
  EXPECT_NE(tracer_only.find("\"pid\":1"), std::string::npos);
  const std::string neither = obs::combined_trace_json(nullptr, nullptr);
  EXPECT_NE(neither.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(SchedTelemetryTest, QueueSamplerRecordsPerWorkerSeries) {
  SchedTelemetry::Options options;
  options.queue_sample_period_us = 200;
  SchedTelemetry sched(nullptr, options);
  sched.begin_run(2);
  sched.start_queue_sampler([] { return std::vector<std::size_t>{3, 1}; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sched.queue_depth_ring().ticks() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sched.stop_queue_sampler();
  EXPECT_GE(sched.queue_depth_ring().ticks(), 3u);
  const std::string json = sched.queue_depth_ring().render_json();
  EXPECT_NE(json.find("ripki.exec.queue_depth.worker0"), std::string::npos);
  EXPECT_NE(json.find("ripki.exec.queue_depth.worker1"), std::string::npos);
  EXPECT_NE(json.find("ripki.exec.queue_depth.total"), std::string::npos);
  // Restarting replaces the sampler; stopping twice is safe.
  sched.start_queue_sampler([] { return std::vector<std::size_t>{0, 0}; });
  sched.stop_queue_sampler();
  sched.stop_queue_sampler();
}

// --- against a real pool ----------------------------------------------------

TEST(SchedPoolTest, PoolConstructorOpensTheRunWindow) {
  SchedTelemetry sched;
  exec::ThreadPool pool(3, nullptr, &sched);
  EXPECT_EQ(sched.lanes(), 4u);
  EXPECT_EQ(sched.external_lane(), 3u);
}

TEST(SchedPoolTest, StealsPlusOwnPopsSumToTasksExecuted) {
  SchedTelemetry sched;
  constexpr int kTasks = 2000;
  std::atomic<int> count{0};
  static std::atomic<int> benchmark_sink{0};
  {
    exec::ThreadPool pool(4, nullptr, &sched);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&count] {
        // A little work so runs have measurable length and steals happen.
        int spin = 0;
        for (int j = 0; j < 100; ++j) spin += j;
        benchmark_sink.fetch_add(spin, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor drains and joins: every task has run and every worker
    // has detached when the snapshot below is taken.
  }
  ASSERT_EQ(count.load(), kTasks);

  const auto snap = sched.snapshot();
  ASSERT_EQ(snap.lanes.size(), 5u);
  std::uint64_t tasks = 0, own_pops = 0, steals = 0;
  for (const auto& lane : snap.lanes) {
    // The identity must hold per lane, not just in aggregate.
    EXPECT_EQ(lane.tasks, lane.own_pops + lane.steals)
        << "lane " << lane.lane;
    tasks += lane.tasks;
    own_pops += lane.own_pops;
    steals += lane.steals;
  }
  EXPECT_EQ(tasks, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(own_pops + steals, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.lanes.back().tasks, 0u);  // external lane saw no pool task
}

TEST(SchedPoolTest, StolenTasksMatchPoolCounter) {
  SchedTelemetry sched;
  std::uint64_t pool_stolen = 0;
  {
    exec::ThreadPool pool(4, nullptr, &sched);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    while (pool.tasks_executed() < 1000) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    pool_stolen = pool.tasks_stolen();
  }
  std::uint64_t lane_steals = 0;
  for (const auto& lane : sched.snapshot().lanes) lane_steals += lane.steals;
  EXPECT_EQ(lane_steals, pool_stolen);
}

TEST(SchedPoolTest, IdleParkIntervalsNeverOverlapRunIntervals) {
  SchedTelemetry sched;
  {
    exec::ThreadPool pool(4, nullptr, &sched);
    std::atomic<int> count{0};
    // Bursts with gaps force parks between runs on every worker.
    for (int burst = 0; burst < 10; ++burst) {
      for (int i = 0; i < 50; ++i) {
        pool.submit([&count] { count.fetch_add(1); });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    while (count.load() < 500) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  bool saw_idle = false;
  for (const auto& lane : sched.snapshot().lanes) {
    // Run and idle events are recorded by the lane's one owner thread, so
    // they arrive chronologically; consecutive intervals must not overlap.
    const SchedTelemetry::Event* previous = nullptr;
    for (const auto& event : lane.events) {
      if (event.kind != SchedTelemetry::EventKind::kRun &&
          event.kind != SchedTelemetry::EventKind::kIdle) {
        continue;
      }
      EXPECT_LE(event.begin_us, event.end_us);
      if (previous != nullptr) {
        EXPECT_GE(event.begin_us, previous->end_us)
            << "lane " << lane.lane << ": "
            << (event.kind == SchedTelemetry::EventKind::kRun ? "run"
                                                              : "idle")
            << " [" << event.begin_us << ", " << event.end_us
            << ") overlaps previous interval ending at " << previous->end_us;
      }
      if (event.kind == SchedTelemetry::EventKind::kIdle) saw_idle = true;
      previous = &event;
    }
  }
  EXPECT_TRUE(saw_idle) << "bursty submission should have parked workers";
}

TEST(SchedPoolTest, QueueDepthsTrackSubmittedBacklog) {
  SchedTelemetry sched;
  exec::ThreadPool pool(2, nullptr, &sched);
  EXPECT_EQ(pool.queue_depths().size(), 2u);

  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  constexpr int kTasks = 40;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&release, &done] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Two tasks occupy the workers; the rest must be visible as queue depth.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::size_t backlog = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    backlog = 0;
    for (const std::size_t depth : pool.queue_depths()) backlog += depth;
    if (backlog >= kTasks - 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(backlog, static_cast<std::size_t>(kTasks - 2));
  release.store(true, std::memory_order_release);
  while (done.load() < kTasks) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::size_t after = 0;
  for (const std::size_t depth : pool.queue_depths()) after += depth;
  EXPECT_EQ(after, 0u);
}

// --- end to end through the pipeline ----------------------------------------

class SchedPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web::EcosystemConfig config;
    config.domain_count = 400;
    config.isp_count = 60;
    config.hoster_count = 20;
    config.enterprise_count = 60;
    config.transit_count = 10;
    eco_ = web::Ecosystem::generate(config).release();
  }
  static void TearDownTestSuite() {
    delete eco_;
    eco_ = nullptr;
  }
  static web::Ecosystem* eco_;
};

web::Ecosystem* SchedPipelineTest::eco_ = nullptr;

TEST_F(SchedPipelineTest, ParallelSweepAttributesAllFourStages) {
  SchedTelemetry sched;
  core::PipelineConfig config;
  config.threads = 2;
  config.sched = &sched;
  core::MeasurementPipeline pipeline(*eco_, config);
  pipeline.run();

  // Requested threads clamp to hardware concurrency; one lane per worker
  // the sweep actually ran with, plus the external lane.
  const std::size_t workers = pipeline.effective_threads();
  ASSERT_GE(workers, 1u);

  const auto snap = sched.snapshot();
  ASSERT_EQ(snap.lanes.size(), workers + 1);
  std::array<std::uint64_t, obs::kSweepStageCount> stage_ns{};
  std::uint64_t tasks = 0;
  for (const auto& lane : snap.lanes) {
    tasks += lane.tasks;
    for (std::size_t s = 0; s < obs::kSweepStageCount; ++s) {
      stage_ns[s] += lane.stage_ns[s];
    }
  }
  EXPECT_GT(tasks, 0u);
  for (std::size_t s = 0; s < obs::kSweepStageCount; ++s) {
    EXPECT_GT(stage_ns[s], 0u)
        << "stage " << obs::sweep_stage_name(static_cast<SweepStage>(s))
        << " never attributed";
  }
  // Worker lanes did the attribution; queue sampling ticked.
  std::uint64_t worker_stage1 = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    worker_stage1 += snap.lanes[w].stage_ns[0];
  }
  EXPECT_GT(worker_stage1, 0u);
  EXPECT_EQ(snap.lanes.back().tasks, 0u);
}

TEST_F(SchedPipelineTest, SerialSweepChargesTheExternalLane) {
  SchedTelemetry sched;
  core::PipelineConfig config;
  config.sched = &sched;
  core::MeasurementPipeline pipeline(*eco_, config);
  pipeline.run();

  const auto snap = sched.snapshot();
  ASSERT_EQ(snap.lanes.size(), 1u);
  const auto& lane = snap.lanes[0];
  EXPECT_TRUE(lane.external);
  for (std::size_t s = 0; s < obs::kSweepStageCount; ++s) {
    EXPECT_GT(lane.stage_ns[s], 0u)
        << obs::sweep_stage_name(static_cast<SweepStage>(s));
  }
  EXPECT_EQ(lane.tasks, 0u);  // no pool ran
}

TEST_F(SchedPipelineTest, InstrumentedRunStaysIdenticalToUninstrumented) {
  core::PipelineConfig plain;
  plain.threads = 2;
  core::MeasurementPipeline base(*eco_, plain);
  const core::Dataset expected = base.run();

  SchedTelemetry sched;
  core::PipelineConfig config;
  config.threads = 2;
  config.sched = &sched;
  core::MeasurementPipeline pipeline(*eco_, config);
  const core::Dataset actual = pipeline.run();
  EXPECT_TRUE(actual == expected);
}

}  // namespace
}  // namespace ripki
