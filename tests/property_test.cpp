// Parameterized property sweeps across the substrates: each test states an
// invariant and drives it over randomized or exhaustive input families.
#include <gtest/gtest.h>

#include <algorithm>

#include "bgp/speaker.hpp"
#include "crypto/rsa.hpp"
#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "rpki/origin_validation.hpp"
#include "rpki/validator.hpp"
#include "trie/prefix_trie.hpp"
#include "util/prng.hpp"

namespace ripki {
namespace {

net::Prefix P(const std::string& text) { return net::Prefix::parse(text).value(); }

// --- SHA-256 block-boundary sweep ------------------------------------------------

class ShaBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShaBoundary, IncrementalEqualsOneShotAroundBlockEdges) {
  const std::size_t length = GetParam();
  std::string input(length, '\0');
  for (std::size_t i = 0; i < length; ++i) {
    input[i] = static_cast<char>('a' + i % 26);
  }
  const auto expected = crypto::sha256(input);
  for (std::size_t split = 0; split <= length; split += 7) {
    crypto::Sha256 hasher;
    hasher.update(std::string_view(input).substr(0, split));
    hasher.update(std::string_view(input).substr(split));
    EXPECT_EQ(hasher.finish(), expected) << "len=" << length << " split=" << split;
  }
}

// 55/56/64 straddle the padding boundary; 119/128 the two-block boundary.
INSTANTIATE_TEST_SUITE_P(BlockEdges, ShaBoundary,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65, 119,
                                           127, 128, 129, 1000));

// --- RSA seed sweep ----------------------------------------------------------------

class RsaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RsaSweep, SignVerifyAndCrossKeyRejection) {
  util::Prng prng(GetParam());
  const auto keys = crypto::generate_keypair(prng);
  const auto other = crypto::generate_keypair(prng);

  for (int i = 0; i < 4; ++i) {
    util::Bytes message(32 + static_cast<std::size_t>(i) * 17);
    for (auto& b : message) b = static_cast<std::uint8_t>(prng.next_u64());

    const auto sig = crypto::sign(keys.priv, message);
    EXPECT_TRUE(crypto::verify(keys.pub, message, sig));
    EXPECT_FALSE(crypto::verify(other.pub, message, sig));

    auto tampered = message;
    tampered[prng.index(tampered.size())] ^= 0x01;
    EXPECT_FALSE(crypto::verify(keys.pub, tampered, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsaSweep, ::testing::Values(101, 202, 303));

// --- IPv6 trie property vs brute force ----------------------------------------------

class TrieV6Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieV6Property, CoveringAgreesWithBruteForce) {
  util::Prng prng(GetParam());
  trie::PrefixTrie<int> trie;
  std::vector<net::Prefix> stored;

  const auto random_v6 = [&]() {
    std::array<std::uint8_t, 16> bytes{};
    // Cluster in 2a00::/12 so prefixes actually nest.
    bytes[0] = 0x2a;
    bytes[1] = static_cast<std::uint8_t>(prng.uniform(4));
    for (std::size_t i = 2; i < 8; ++i) {
      bytes[i] = static_cast<std::uint8_t>(prng.uniform(4));
    }
    return net::IpAddress::v6(bytes);
  };

  for (int i = 0; i < 200; ++i) {
    const int length = 12 + static_cast<int>(prng.uniform(45));
    const net::Prefix prefix(random_v6(), length);
    if (trie.find_exact(prefix) == nullptr) {
      stored.push_back(prefix);
      trie.insert(prefix, i);
    }
  }

  for (int i = 0; i < 300; ++i) {
    const auto addr = random_v6();
    std::vector<net::Prefix> expected;
    for (const auto& prefix : stored) {
      if (prefix.contains(addr)) expected.push_back(prefix);
    }
    std::sort(expected.begin(), expected.end(),
              [](const net::Prefix& a, const net::Prefix& b) {
                return a.length() < b.length();
              });
    const auto matches = trie.covering(addr);
    ASSERT_EQ(matches.size(), expected.size());
    for (std::size_t m = 0; m < matches.size(); ++m) {
      EXPECT_EQ(matches[m].prefix, expected[m]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieV6Property, ::testing::Values(7, 8, 9, 10));

// --- RFC 6811 vs brute force ----------------------------------------------------------

class OriginValidationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OriginValidationProperty, IndexAgreesWithLinearScan) {
  util::Prng prng(GetParam());
  rpki::VrpSet vrps;
  for (int i = 0; i < 400; ++i) {
    const int length = 8 + static_cast<int>(prng.uniform(17));  // 8..24
    const net::Prefix prefix(
        net::IpAddress::v4(static_cast<std::uint32_t>(prng.next_u64())), length);
    vrps.push_back(rpki::Vrp{
        prefix,
        static_cast<std::uint8_t>(length + static_cast<int>(prng.uniform(
                                               static_cast<std::uint64_t>(33 - length)))),
        net::Asn(static_cast<std::uint32_t>(64000 + prng.uniform(40)))});
  }
  const rpki::VrpIndex index(vrps);

  const auto brute_force = [&](const net::Prefix& route, net::Asn origin) {
    bool covered = false;
    for (const auto& vrp : vrps) {
      if (!vrp.prefix.contains(route)) continue;
      covered = true;
      if (origin.value() != 0 && vrp.asn == origin &&
          route.length() <= static_cast<int>(vrp.max_length)) {
        return rpki::OriginValidity::kValid;
      }
    }
    return covered ? rpki::OriginValidity::kInvalid
                   : rpki::OriginValidity::kNotFound;
  };

  for (int i = 0; i < 600; ++i) {
    const int length = 8 + static_cast<int>(prng.uniform(21));
    const net::Prefix route(
        net::IpAddress::v4(static_cast<std::uint32_t>(prng.next_u64())), length);
    const net::Asn origin(static_cast<std::uint32_t>(64000 + prng.uniform(42)));
    EXPECT_EQ(index.validate(route, origin), brute_force(route, origin))
        << route.to_string() << " from " << origin.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OriginValidationProperty,
                         ::testing::Values(11, 22, 33, 44));

// --- validator bookkeeping invariant ---------------------------------------------------

TEST(ValidatorInvariant, AcceptedPlusRejectedEqualsPublished) {
  util::Prng prng(55);
  auto anchor = rpki::make_trust_anchor(
      "RIPE", rpki::ResourceSet({P("62.0.0.0/8")}),
      rpki::ValidityWindow{rpki::kDefaultNow - 10 * rpki::kSecondsPerDay,
                           rpki::kDefaultNow + 100 * rpki::kSecondsPerDay},
      prng);
  rpki::RepositoryBuilder builder(anchor, rpki::kDefaultNow, prng);
  const auto good = builder.add_ca("Good Org", rpki::ResourceSet({P("62.1.0.0/16")}));
  const auto bad = builder.add_ca("Bad Org", rpki::ResourceSet({P("62.2.0.0/16")}));

  rpki::RoaContent content;
  content.asn = net::Asn(64512);
  content.prefixes = {rpki::RoaPrefix{P("62.1.0.0/16"), 16}};
  builder.add_roa(good, content);
  builder.add_expired_roa(good, content);
  rpki::RoaContent bad_content;
  bad_content.asn = net::Asn(64513);
  bad_content.prefixes = {rpki::RoaPrefix{P("62.2.0.0/16"), 16}};
  builder.add_roa(bad, bad_content);
  builder.add_tampered_roa(bad, bad_content);
  builder.revoke_ca(bad);
  const auto repo = builder.build();

  rpki::ValidationReport report;
  rpki::RepositoryValidator(rpki::kDefaultNow).validate_into(repo, report);

  EXPECT_EQ(report.cas_accepted + report.cas_rejected, repo.points.size());
  EXPECT_EQ(report.roas_accepted + report.roas_rejected, repo.total_roas());
  EXPECT_EQ(report.roas_accepted, 1u);  // only the good, current ROA
  EXPECT_EQ(report.vrps.size(), 1u);
}

// --- speaker policy toggling -------------------------------------------------------------

TEST(SpeakerPolicy, ValidationCanBeTurnedOnAndOff) {
  rpki::VrpIndex index;
  index.add(rpki::Vrp{P("10.10.0.0/16"), 16, net::Asn(65010)});
  bgp::BgpSpeaker speaker(net::Asn(64500));

  const bgp::RouteUpdate hijack{P("10.10.0.0/16"), bgp::AsPath::sequence({666})};
  EXPECT_EQ(speaker.process(hijack), bgp::PolicyAction::kAcceptedNotFound);

  speaker.enable_origin_validation(&index);
  EXPECT_TRUE(speaker.validating());
  EXPECT_EQ(speaker.process(hijack), bgp::PolicyAction::kRejectedInvalid);

  speaker.disable_origin_validation();
  EXPECT_EQ(speaker.process(hijack), bgp::PolicyAction::kAcceptedNotFound);
  EXPECT_EQ(speaker.counters().rejected_invalid, 1u);
  EXPECT_EQ(speaker.counters().updates, 3u);
}

// --- resolver chain depth limit -------------------------------------------------------------

TEST(ResolverLimits, RejectsOverlongCnameChains) {
  dns::InMemoryZoneDb zones;
  const auto name_of = [](int i) {
    return dns::DnsName::parse("hop" + std::to_string(i) + ".example").value();
  };
  for (int i = 0; i < 25; ++i) {
    zones.add(dns::ResourceRecord::cname(name_of(i), name_of(i + 1)));
  }
  zones.add(dns::ResourceRecord::a(name_of(25),
                                   net::IpAddress::v4(192, 0, 2, 1)));
  const dns::AuthoritativeServer server(&zones);
  dns::StubResolver resolver(&server);

  auto result = resolver.resolve(name_of(0), dns::RecordType::kA);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("depth"), std::string::npos);

  // A chain just inside the limit resolves.
  auto near_limit = resolver.resolve(name_of(10), dns::RecordType::kA);
  ASSERT_TRUE(near_limit.ok()) << near_limit.error().message;
  EXPECT_EQ(near_limit.value().addresses.size(), 1u);
  EXPECT_EQ(near_limit.value().cname_hops(), 15u);
}

// --- dns name sizes ---------------------------------------------------------------------------

TEST(DnsNameSize, EncodedSizeMatchesWireFormat) {
  const auto name = dns::DnsName::parse("www.example.com").value();
  // 3 "www" + 7 "example" + 3 "com" + 3 length bytes + root byte.
  EXPECT_EQ(name.encoded_size(), 17u);
  EXPECT_EQ(dns::DnsName().encoded_size(), 1u);
}

}  // namespace
}  // namespace ripki
