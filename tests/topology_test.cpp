// Tests for the BGP UPDATE codec and the policy-propagation /
// partial-deployment substrate.
#include <gtest/gtest.h>

#include "bgp/topology.hpp"
#include "bgp/update.hpp"

namespace ripki::bgp {
namespace {

net::Prefix P(const std::string& text) { return net::Prefix::parse(text).value(); }

// --- UPDATE codec ------------------------------------------------------------

TEST(UpdateCodec, AnnouncementRoundTrip) {
  UpdateMessage update;
  update.as_path = AsPath::sequence({3320, 1299, 65010});
  update.next_hop = net::IpAddress::v4(192, 0, 2, 1);
  update.nlri = {P("208.65.152.0/22"), P("10.0.0.0/8"), P("23.4.128.0/17")};

  auto encoded = encode_update(update);
  ASSERT_TRUE(encoded.ok());
  util::ByteReader reader(encoded.value());
  auto decoded = decode_update(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value(), update);
  EXPECT_TRUE(reader.at_end());
}

TEST(UpdateCodec, WithdrawalOnlyRoundTrip) {
  UpdateMessage update;
  update.withdrawn = {P("208.65.153.0/24"), P("0.0.0.0/0")};

  auto encoded = encode_update(update);
  ASSERT_TRUE(encoded.ok());
  util::ByteReader reader(encoded.value());
  auto decoded = decode_update(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().withdrawn, update.withdrawn);
  EXPECT_TRUE(decoded.value().nlri.empty());
}

TEST(UpdateCodec, HeaderLayout) {
  UpdateMessage update;
  update.withdrawn = {P("10.0.0.0/8")};
  const auto encoded = encode_update(update).value();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(encoded[static_cast<std::size_t>(i)], 0xFF);
  EXPECT_EQ(encoded[18], kBgpMessageTypeUpdate);
  // length field == actual size
  EXPECT_EQ((encoded[16] << 8) | encoded[17], static_cast<int>(encoded.size()));
}

TEST(UpdateCodec, RejectsBadMarker) {
  UpdateMessage update;
  update.withdrawn = {P("10.0.0.0/8")};
  auto encoded = encode_update(update).value();
  encoded[3] = 0x00;
  util::ByteReader reader(encoded);
  EXPECT_FALSE(decode_update(reader).ok());
}

TEST(UpdateCodec, RejectsAnnouncementWithoutAsPath) {
  // Hand-build: header + empty withdrawn + empty attrs + one NLRI.
  util::ByteWriter w;
  for (int i = 0; i < 16; ++i) w.put_u8(0xFF);
  w.put_u16(19 + 2 + 2 + 2);  // header + blocks + 1-byte prefix field
  w.put_u8(kBgpMessageTypeUpdate);
  w.put_u16(0);  // withdrawn length
  w.put_u16(0);  // attrs length
  w.put_u8(8);   // prefix length 8
  w.put_u8(10);  // "10.0.0.0/8"
  util::ByteReader reader(w.bytes());
  EXPECT_FALSE(decode_update(reader).ok());
}

TEST(UpdateCodec, RejectsOverflowingWithdrawnBlock) {
  UpdateMessage update;
  update.withdrawn = {P("10.0.0.0/8")};
  auto encoded = encode_update(update).value();
  encoded[19] = 0xFF;  // withdrawn length high byte: overflows body
  encoded[20] = 0xFF;
  util::ByteReader reader(encoded);
  EXPECT_FALSE(decode_update(reader).ok());
}

TEST(UpdateCodec, RejectsTruncation) {
  UpdateMessage update;
  update.as_path = AsPath::sequence({1, 2});
  update.next_hop = net::IpAddress::v4(192, 0, 2, 1);
  update.nlri = {P("10.0.0.0/8")};
  auto encoded = encode_update(update).value();
  for (std::size_t cut = 1; cut < encoded.size(); cut += 7) {
    util::Bytes truncated(encoded.begin(),
                          encoded.begin() + static_cast<long>(cut));
    util::ByteReader reader(truncated);
    EXPECT_FALSE(decode_update(reader).ok()) << "cut=" << cut;
  }
}

// --- topology generation ------------------------------------------------------

TopologyConfig small_topology() {
  TopologyConfig config;
  config.tier1_count = 4;
  config.transit_count = 30;
  config.edge_count = 300;
  return config;
}

TEST(AsTopology, StructureMatchesConfig) {
  const auto topology = AsTopology::generate(small_topology());
  EXPECT_EQ(topology.as_count(), 334u);
  EXPECT_EQ(topology.tier1_count(), 4u);
  EXPECT_FALSE(topology.is_edge(0));
  EXPECT_FALSE(topology.is_edge(33));
  EXPECT_TRUE(topology.is_edge(34));

  // Tier-1s form a clique of peers.
  for (std::size_t a = 0; a < 4; ++a) {
    std::size_t peers = 0;
    for (const auto& link : topology.links(a)) {
      if (link.neighbor < 4) {
        EXPECT_EQ(link.relationship, Relationship::kPeer);
        ++peers;
      }
    }
    EXPECT_EQ(peers, 3u);
  }

  // Every edge AS has at least one provider; stubs have no customers.
  for (std::size_t e = 34; e < topology.as_count(); ++e) {
    bool has_provider = false;
    for (const auto& link : topology.links(e)) {
      EXPECT_NE(link.relationship, Relationship::kCustomer);
      if (link.relationship == Relationship::kProvider) has_provider = true;
    }
    EXPECT_TRUE(has_provider) << "edge " << e;
  }
}

TEST(AsTopology, LinksAreSymmetric) {
  const auto topology = AsTopology::generate(small_topology());
  for (std::size_t a = 0; a < topology.as_count(); ++a) {
    for (const auto& link : topology.links(a)) {
      bool found = false;
      for (const auto& back : topology.links(link.neighbor)) {
        if (back.neighbor != a) continue;
        found = true;
        // Relationship must invert.
        if (link.relationship == Relationship::kPeer) {
          EXPECT_EQ(back.relationship, Relationship::kPeer);
        } else if (link.relationship == Relationship::kCustomer) {
          EXPECT_EQ(back.relationship, Relationship::kProvider);
        } else {
          EXPECT_EQ(back.relationship, Relationship::kCustomer);
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(AsTopology, DeterministicForSeed) {
  const auto a = AsTopology::generate(small_topology());
  const auto b = AsTopology::generate(small_topology());
  ASSERT_EQ(a.as_count(), b.as_count());
  for (std::size_t i = 0; i < a.as_count(); ++i) {
    EXPECT_EQ(a.asn_of(i), b.asn_of(i));
    EXPECT_EQ(a.links(i).size(), b.links(i).size());
  }
}

// --- propagation -----------------------------------------------------------------

class PropagationTest : public ::testing::Test {
 protected:
  PropagationTest() : topology_(AsTopology::generate(small_topology())) {}
  AsTopology topology_;
};

TEST_F(PropagationTest, AnnouncementReachesAlmostEveryone) {
  PropagationSim sim(topology_, nullptr);
  const Announcement announcement{P("10.0.0.0/8"), 40};  // an edge AS
  const auto routes = sim.propagate(announcement);

  std::size_t reachable = 0;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (i == 40) continue;
    if (routes[i].reachable) {
      ++reachable;
      EXPECT_EQ(routes[i].path.origin()->value(), topology_.asn_of(40).value());
      EXPECT_GE(routes[i].path.hop_count(), 1u);
    }
  }
  // The graph is connected through providers: everyone can reach a stub.
  EXPECT_EQ(reachable, topology_.as_count() - 1);
}

TEST_F(PropagationTest, ValleyFreePathsOnly) {
  PropagationSim sim(topology_, nullptr);
  const Announcement announcement{P("10.0.0.0/8"), 50};
  const auto routes = sim.propagate(announcement);

  // Gao-Rexford paths are valley-free: walked from the ORIGIN to the
  // route holder, the link pattern must be up* peer? down* (climb through
  // providers, cross at most one peering, then descend to customers).
  std::size_t checked = 0;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (!routes[i].reachable || routes[i].path.hop_count() < 2) continue;

    // AS indices along the path: route holder first, origin last.
    std::vector<std::uint32_t> indices;
    indices.push_back(static_cast<std::uint32_t>(i));
    for (const auto& segment : routes[i].path.segments()) {
      for (const auto asn : segment.asns) {
        for (std::size_t k = 0; k < topology_.as_count(); ++k) {
          if (topology_.asn_of(k) == asn) {
            indices.push_back(static_cast<std::uint32_t>(k));
            break;
          }
        }
      }
    }
    std::reverse(indices.begin(), indices.end());  // origin ... holder

    // Phases: 0 = climbing (to providers), 1 = crossed a peer link,
    // 2 = descending (to customers). Transitions may only move forward.
    int phase = 0;
    bool ok = true;
    for (std::size_t step = 0; ok && step + 1 < indices.size(); ++step) {
      Relationship rel = Relationship::kPeer;
      bool found = false;
      for (const auto& link : topology_.links(indices[step])) {
        if (link.neighbor == indices[step + 1]) {
          rel = link.relationship;
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "path traverses a non-existent link";
      switch (rel) {
        case Relationship::kProvider:  // going up
          if (phase != 0) ok = false;
          break;
        case Relationship::kPeer:
          if (phase >= 1) ok = false;
          phase = 1;
          break;
        case Relationship::kCustomer:  // going down
          phase = 2;
          break;
      }
    }
    EXPECT_TRUE(ok) << "valley in path " << routes[i].path.to_string();
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST_F(PropagationTest, HijackPollutesWithoutValidation) {
  PropagationSim sim(topology_, nullptr);
  const Announcement legit{P("208.65.152.0/22"), 100};
  const Announcement hijack{P("208.65.153.0/24"), 200};
  const auto outcome = sim.simulate_hijack(legit, hijack);
  // Without validation, the more-specific reaches everyone: full pollution.
  EXPECT_EQ(outcome.polluted, topology_.as_count() - 2);
  EXPECT_EQ(outcome.protected_count, 0u);
}

TEST_F(PropagationTest, UniversalValidationStopsHijack) {
  rpki::VrpIndex index;
  index.add(rpki::Vrp{P("208.65.152.0/22"), 22,
                      topology_.asn_of(100)});  // ROA for the victim
  PropagationSim sim(topology_, &index);
  sim.set_validators(std::vector<bool>(topology_.as_count(), true));

  const Announcement legit{P("208.65.152.0/22"), 100};
  const Announcement hijack{P("208.65.153.0/24"), 200};
  const auto outcome = sim.simulate_hijack(legit, hijack);
  // Only the hijacker's neighbors-of-zero: no one accepts the invalid
  // more-specific, everyone keeps the valid covering route.
  EXPECT_EQ(outcome.polluted, 0u);
  EXPECT_EQ(outcome.protected_count, topology_.as_count() - 2);
}

TEST_F(PropagationTest, PartialValidationReducesPollutionMonotonically) {
  rpki::VrpIndex index;
  index.add(rpki::Vrp{P("208.65.152.0/22"), 22, topology_.asn_of(100)});
  PropagationSim sim(topology_, &index);

  const Announcement legit{P("208.65.152.0/22"), 100};
  const Announcement hijack{P("208.65.153.0/24"), 200};

  util::Prng prng(3);
  double previous = 1.1;
  for (const double adoption : {0.0, 0.3, 0.7, 1.0}) {
    std::vector<bool> validators(topology_.as_count());
    for (std::size_t i = 0; i < validators.size(); ++i) {
      validators[i] = prng.bernoulli(adoption);
    }
    sim.set_validators(validators);
    const double polluted = sim.simulate_hijack(legit, hijack).polluted_fraction();
    EXPECT_LE(polluted, previous + 0.05) << "adoption " << adoption;
    previous = polluted;
  }
}

TEST_F(PropagationTest, ValidatorsThemselvesAreNeverPolluted) {
  rpki::VrpIndex index;
  index.add(rpki::Vrp{P("208.65.152.0/22"), 22, topology_.asn_of(100)});
  PropagationSim sim(topology_, &index);

  util::Prng prng(4);
  std::vector<bool> validators(topology_.as_count());
  for (std::size_t i = 0; i < validators.size(); ++i) {
    validators[i] = prng.bernoulli(0.4);
  }
  sim.set_validators(validators);

  const Announcement hijack{P("208.65.153.0/24"), 200};
  const auto routes = sim.propagate(hijack);
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (i == 200 || !validators[i]) continue;
    EXPECT_FALSE(routes[i].reachable) << "validating AS " << i << " accepted hijack";
  }
}

TEST_F(PropagationTest, ValidAnnouncementsPassValidators) {
  rpki::VrpIndex index;
  index.add(rpki::Vrp{P("208.65.152.0/22"), 22, topology_.asn_of(100)});
  PropagationSim sim(topology_, &index);
  sim.set_validators(std::vector<bool>(topology_.as_count(), true));

  const auto routes = sim.propagate(Announcement{P("208.65.152.0/22"), 100});
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (i != 100 && routes[i].reachable) ++reachable;
  }
  EXPECT_EQ(reachable, topology_.as_count() - 1);
}

}  // namespace
}  // namespace ripki::bgp
