// Pooled-vs-serial equality for the two setup stages (ISSUE 4 tentpole):
// the record-sliced MRT parse and the sharded repository validation must
// produce byte-identical artifacts at every worker count, including under
// parse errors (same first error, same partial stats). These suites also
// run under the TSan CI job, so the shard fan-out is exercised with race
// detection on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/collector.hpp"
#include "bgp/mrt.hpp"
#include "bgp/rib.hpp"
#include "core/pipeline.hpp"
#include "exec/thread_pool.hpp"
#include "rpki/repository.hpp"
#include "rpki/tal.hpp"
#include "rpki/validator.hpp"
#include "util/bytes.hpp"
#include "util/prng.hpp"
#include "web/ecosystem.hpp"

namespace ripki {
namespace {

net::Prefix P(const std::string& text) { return net::Prefix::parse(text).value(); }
net::IpAddress A(const std::string& text) {
  return net::IpAddress::parse(text).value();
}

constexpr std::size_t kWorkerLadder[] = {1, 4, 16};

// --- MRT: record-sliced parse ------------------------------------------------

class ParallelSetupMrt : public ::testing::Test {
 protected:
  /// A dump big enough that every ladder rung gets multiple shards:
  /// three peers, a few hundred v4 prefixes, some v6, and multi-entry
  /// RIB records (two peers announcing the same prefix).
  static util::Bytes sample_dump() {
    bgp::RouteCollector collector(0x0A000001, "ris-sim");
    const auto p0 =
        collector.add_peer(bgp::PeerEntry{1, A("192.0.2.1"), net::Asn(3320)});
    const auto p1 =
        collector.add_peer(bgp::PeerEntry{2, A("192.0.2.2"), net::Asn(1299)});
    const auto p2 =
        collector.add_peer(bgp::PeerEntry{3, A("2001:db8::1"), net::Asn(6939)});
    for (std::uint32_t i = 0; i < 300; ++i) {
      const net::Prefix prefix =
          P(std::to_string(10 + i / 256) + "." + std::to_string(i % 256) +
            ".0.0/16");
      collector.announce(p0, prefix,
                         bgp::AsPath::sequence({3320, 100 + i}), 7 + i);
      if (i % 3 == 0) {
        collector.announce(p1, prefix,
                           bgp::AsPath::sequence({1299, 2914, 100 + i}), 9 + i);
      }
    }
    for (std::uint32_t i = 0; i < 40; ++i) {
      collector.announce(
          p2, P("2a00:" + std::to_string(1000 + i) + "::/32"),
          bgp::AsPath::sequence({6939, 5000 + i}), 11 + i);
    }
    return collector.dump_mrt(0);
  }
};

TEST_F(ParallelSetupMrt, PooledParseMatchesSerial) {
  const util::Bytes dump = sample_dump();

  bgp::mrt::ParseStats serial_stats;
  auto serial = bgp::mrt::read_table_dump(dump, &serial_stats);
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial.value().entry_count(), 300u);

  for (const std::size_t workers : kWorkerLadder) {
    exec::ThreadPool pool(workers);
    bgp::mrt::ParseStats pooled_stats;
    auto pooled = bgp::mrt::read_table_dump(dump, &pooled_stats, nullptr, &pool);
    ASSERT_TRUE(pooled.ok()) << "workers=" << workers;
    EXPECT_TRUE(pooled.value() == serial.value()) << "workers=" << workers;
    EXPECT_EQ(pooled_stats, serial_stats) << "workers=" << workers;
  }
}

TEST_F(ParallelSetupMrt, TruncatedDumpSameErrorAndStats) {
  util::Bytes dump = sample_dump();
  // Cut into the body of the final record: the boundary scan fails after
  // every complete record has been decoded.
  dump.resize(dump.size() - 3);

  bgp::mrt::ParseStats serial_stats;
  auto serial = bgp::mrt::read_table_dump(dump, &serial_stats);
  ASSERT_FALSE(serial.ok());

  for (const std::size_t workers : kWorkerLadder) {
    exec::ThreadPool pool(workers);
    bgp::mrt::ParseStats pooled_stats;
    auto pooled = bgp::mrt::read_table_dump(dump, &pooled_stats, nullptr, &pool);
    ASSERT_FALSE(pooled.ok()) << "workers=" << workers;
    EXPECT_EQ(pooled.error().message, serial.error().message)
        << "workers=" << workers;
    EXPECT_EQ(pooled_stats, serial_stats) << "workers=" << workers;
  }
}

TEST_F(ParallelSetupMrt, MalformedRecordSameErrorAndStats) {
  // A structurally complete dump whose final RIB record has a garbage
  // body: the failure happens in a worker's decode slice, and the join
  // must surface the same first error and partial stats as the serial
  // walk.
  util::ByteWriter writer;
  writer.put_bytes(sample_dump());
  bgp::mrt::write_record(writer, bgp::mrt::Record{0, bgp::mrt::kTypeTableDumpV2,
                                                  bgp::mrt::kSubtypeRibIpv4Unicast,
                                                  {1, 2, 3}});
  const util::Bytes dump = writer.bytes();

  bgp::mrt::ParseStats serial_stats;
  auto serial = bgp::mrt::read_table_dump(dump, &serial_stats);
  ASSERT_FALSE(serial.ok());

  for (const std::size_t workers : kWorkerLadder) {
    exec::ThreadPool pool(workers);
    bgp::mrt::ParseStats pooled_stats;
    auto pooled = bgp::mrt::read_table_dump(dump, &pooled_stats, nullptr, &pool);
    ASSERT_FALSE(pooled.ok()) << "workers=" << workers;
    EXPECT_EQ(pooled.error().message, serial.error().message)
        << "workers=" << workers;
    EXPECT_EQ(pooled_stats, serial_stats) << "workers=" << workers;
  }
}

// --- RPKI: sharded repository validation -------------------------------------

class ParallelSetupValidator : public ::testing::Test {
 protected:
  ParallelSetupValidator() : prng_(91) {
    // Three trust anchors with deliberately messy contents so the merged
    // report carries VRPs *and* every rejection flavour in a specific
    // serial order.
    anchors_.reserve(3);
    {
      anchors_.push_back(rpki::make_trust_anchor(
          "RIPE", rpki::ResourceSet({P("62.0.0.0/8")}), window(), prng_));
      rpki::RepositoryBuilder builder(anchors_.back(), kNow, prng_);
      for (int ca = 0; ca < 4; ++ca) {
        const auto handle = builder.add_ca(
            "Org " + std::to_string(ca),
            rpki::ResourceSet({P("62." + std::to_string(ca) + ".0.0/16")}));
        for (int roa = 0; roa < 5; ++roa) {
          builder.add_roa(handle, content(64512 + ca, "62." + std::to_string(ca) +
                                                          "." +
                                                          std::to_string(roa * 8) +
                                                          ".0/24"));
        }
      }
      repos_.push_back(builder.build());
    }
    {
      anchors_.push_back(rpki::make_trust_anchor(
          "ARIN", rpki::ResourceSet({P("63.0.0.0/8")}), window(), prng_));
      rpki::RepositoryBuilder builder(anchors_.back(), kNow, prng_);
      const auto good = builder.add_ca("Good", rpki::ResourceSet({P("63.1.0.0/16")}));
      builder.add_roa(good, content(65001, "63.1.1.0/24"));
      builder.add_tampered_roa(good, content(65002, "63.1.2.0/24"));
      builder.add_expired_roa(good, content(65003, "63.1.3.0/24"));
      builder.add_roa(good, content(65004, "63.1.4.0/24"));
      builder.revoke_roa(good, 3);
      builder.add_roa(good, content(65005, "63.1.5.0/24"));
      builder.hide_from_manifest(good, 4);
      const auto revoked = builder.add_ca("Revoked",
                                          rpki::ResourceSet({P("63.2.0.0/16")}));
      builder.add_roa(revoked, content(65006, "63.2.1.0/24"));
      builder.revoke_ca(revoked);
      builder.add_overclaiming_ca("Overclaimer",
                                  rpki::ResourceSet({P("64.0.0.0/16")}));
      repos_.push_back(builder.build());
    }
    {
      anchors_.push_back(rpki::make_trust_anchor(
          "APNIC", rpki::ResourceSet({P("101.0.0.0/8")}), window(), prng_));
      rpki::RepositoryBuilder builder(anchors_.back(), kNow, prng_);
      const auto ca = builder.add_ca("Asia", rpki::ResourceSet({P("101.4.0.0/16")}));
      builder.add_roa(ca, content(65100, "101.4.8.0/24"));
      builder.add_roa(ca, content(65101, "101.4.9.0/24"));
      repos_.push_back(builder.build());
    }
  }

  static constexpr rpki::Timestamp kNow = rpki::kDefaultNow;
  static rpki::ValidityWindow window() {
    return {kNow - 30 * rpki::kSecondsPerDay, kNow + 30 * rpki::kSecondsPerDay};
  }
  static rpki::RoaContent content(std::uint32_t asn, const std::string& prefix) {
    rpki::RoaContent c;
    c.asn = net::Asn(asn);
    c.prefixes = {rpki::RoaPrefix{P(prefix), 24}};
    return c;
  }

  util::Prng prng_;
  std::vector<rpki::TrustAnchor> anchors_;
  std::vector<rpki::Repository> repos_;
};

TEST_F(ParallelSetupValidator, PooledValidateMatchesSerial) {
  const rpki::RepositoryValidator validator(kNow);
  const rpki::ValidationReport serial = validator.validate(repos_);
  ASSERT_FALSE(serial.vrps.empty());
  ASSERT_FALSE(serial.rejected.empty());

  for (const std::size_t workers : kWorkerLadder) {
    exec::ThreadPool pool(workers);
    const rpki::ValidationReport pooled = validator.validate(repos_, &pool);
    EXPECT_TRUE(pooled == serial) << "workers=" << workers;
  }
}

TEST_F(ParallelSetupValidator, PooledTalValidateMatchesSerial) {
  // Only two of the three anchors are in the locator set; the third must
  // get the same kNoMatchingTal rejection header in the same position.
  const std::vector<rpki::TrustAnchorLocator> tals = {
      rpki::tal_for(anchors_[0]), rpki::tal_for(anchors_[2])};

  const rpki::RepositoryValidator validator(kNow);
  const rpki::ValidationReport serial = validator.validate(repos_, tals);
  ASSERT_FALSE(serial.vrps.empty());

  for (const std::size_t workers : kWorkerLadder) {
    exec::ThreadPool pool(workers);
    const rpki::ValidationReport pooled = validator.validate(repos_, tals, &pool);
    EXPECT_TRUE(pooled == serial) << "workers=" << workers;
  }
}

// --- Pipeline: both setup stages through PipelineConfig::threads -------------

TEST(ParallelSetupPipeline, SetupArtifactsMatchSerialAtFourThreads) {
  web::EcosystemConfig config;
  config.domain_count = 600;
  config.isp_count = 80;
  config.hoster_count = 30;
  config.enterprise_count = 100;
  config.transit_count = 12;
  const auto ecosystem = web::Ecosystem::generate(config);

  core::MeasurementPipeline serial(*ecosystem, core::PipelineConfig{});
  serial.run();

  core::PipelineConfig pooled_config;
  pooled_config.threads = 4;
  core::MeasurementPipeline pooled(*ecosystem, pooled_config);
  pooled.run();

  EXPECT_TRUE(pooled.rib() == serial.rib());
  EXPECT_EQ(pooled.mrt_stats(), serial.mrt_stats());
  EXPECT_TRUE(pooled.validation_report() == serial.validation_report());

  // Throughput is measured either way; the pooled run must have clocked
  // both stages.
  EXPECT_GT(pooled.setup_stats().mrt_records_per_sec, 0.0);
  EXPECT_GT(pooled.setup_stats().roas_per_sec, 0.0);
  EXPECT_GE(pooled.setup_stats().rib_prepare_ms, 0.0);
  EXPECT_GE(pooled.setup_stats().vrp_prepare_ms, 0.0);
}

}  // namespace
}  // namespace ripki
