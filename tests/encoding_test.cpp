#include <gtest/gtest.h>

#include "encoding/tlv.hpp"

namespace ripki::encoding {
namespace {

TEST(Tlv, PrimitiveRoundTrip) {
  TlvWriter w;
  w.add_u8(1, 0xAB);
  w.add_u16(2, 0x1234);
  w.add_u32(3, 0xDEADBEEF);
  w.add_u64(4, 0x1122334455667788ULL);
  w.add_string(5, "hello");
  const auto bytes = std::move(w).take();

  auto map = TlvMap::parse(bytes);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().elements().size(), 5u);
  EXPECT_EQ(map.value().require(1).value().as_u8().value(), 0xAB);
  EXPECT_EQ(map.value().require(2).value().as_u16().value(), 0x1234);
  EXPECT_EQ(map.value().require(3).value().as_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(map.value().require(4).value().as_u64().value(), 0x1122334455667788ULL);
  EXPECT_EQ(map.value().require(5).value().as_string(), "hello");
}

TEST(Tlv, NestedContainers) {
  TlvWriter w;
  w.begin(10);
  w.add_u8(11, 1);
  w.begin(12);
  w.add_u8(13, 2);
  w.end();
  w.end();
  w.add_u8(14, 3);
  const auto bytes = std::move(w).take();

  auto outer = TlvMap::parse(bytes);
  ASSERT_TRUE(outer.ok());
  ASSERT_EQ(outer.value().elements().size(), 2u);

  const auto container = outer.value().require(10);
  ASSERT_TRUE(container.ok());
  auto inner = TlvMap::parse(container.value().value);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner.value().require(11).value().as_u8().value(), 1);

  const auto deeper = inner.value().require(12);
  ASSERT_TRUE(deeper.ok());
  auto deepest = TlvMap::parse(deeper.value().value);
  ASSERT_TRUE(deepest.ok());
  EXPECT_EQ(deepest.value().require(13).value().as_u8().value(), 2);
}

TEST(Tlv, EmptyInputIsEmptyMap) {
  auto map = TlvMap::parse({});
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE(map.value().elements().size() == 0);
}

TEST(Tlv, ZeroLengthValue) {
  TlvWriter w;
  w.add_bytes(7, {});
  const auto bytes = std::move(w).take();
  auto map = TlvMap::parse(bytes);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().require(7).value().value.size(), 0u);
}

TEST(Tlv, TruncatedTagFails) {
  const util::Bytes bytes = {0x00};
  EXPECT_FALSE(TlvMap::parse(bytes).ok());
}

TEST(Tlv, TruncatedLengthFails) {
  const util::Bytes bytes = {0x00, 0x01, 0x00};
  EXPECT_FALSE(TlvMap::parse(bytes).ok());
}

TEST(Tlv, TruncatedValueFails) {
  TlvWriter w;
  w.add_u32(1, 42);
  auto bytes = std::move(w).take();
  bytes.pop_back();
  EXPECT_FALSE(TlvMap::parse(bytes).ok());
}

TEST(Tlv, OverlongLengthFails) {
  // Claim 100 bytes of value with only 1 present.
  const util::Bytes bytes = {0x00, 0x01, 0x00, 0x00, 0x00, 0x64, 0xAA};
  EXPECT_FALSE(TlvMap::parse(bytes).ok());
}

TEST(Tlv, TypedAccessorsEnforceWidth) {
  TlvWriter w;
  w.add_u16(1, 7);
  const auto bytes = std::move(w).take();
  auto map = TlvMap::parse(bytes);
  ASSERT_TRUE(map.ok());
  const auto element = map.value().require(1).value();
  EXPECT_FALSE(element.as_u8().ok());
  EXPECT_TRUE(element.as_u16().ok());
  EXPECT_FALSE(element.as_u32().ok());
  EXPECT_FALSE(element.as_u64().ok());
}

TEST(Tlv, FindAllPreservesOrder) {
  TlvWriter w;
  w.add_u8(5, 1);
  w.add_u8(6, 99);
  w.add_u8(5, 2);
  w.add_u8(5, 3);
  const auto bytes = std::move(w).take();
  auto map = TlvMap::parse(bytes);
  ASSERT_TRUE(map.ok());
  const auto all = map.value().find_all(5);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->as_u8().value(), 1);
  EXPECT_EQ(all[1]->as_u8().value(), 2);
  EXPECT_EQ(all[2]->as_u8().value(), 3);
}

TEST(Tlv, RequireMissingTagFails) {
  TlvWriter w;
  w.add_u8(1, 0);
  const auto bytes = std::move(w).take();
  auto map = TlvMap::parse(bytes);
  ASSERT_TRUE(map.ok());
  const auto missing = map.value().require(99);
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.error().message.find("99"), std::string::npos);
}

TEST(Tlv, FindReturnsFirstOccurrence) {
  TlvWriter w;
  w.add_u8(5, 1);
  w.add_u8(5, 2);
  const auto bytes = std::move(w).take();
  auto map = TlvMap::parse(bytes);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().find(5)->as_u8().value(), 1);
  EXPECT_EQ(map.value().find(6), nullptr);
}

TEST(Tlv, LargePayloadRoundTrip) {
  util::Bytes big(70'000, 0x5A);
  TlvWriter w;
  w.add_bytes(1, big);
  const auto bytes = std::move(w).take();
  auto map = TlvMap::parse(bytes);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().require(1).value().value.size(), big.size());
}

}  // namespace
}  // namespace ripki::encoding
