// The incremental pipeline end to end: deterministic churn generation,
// the mutable world (overlay zone, withdraw/announce RIB, RTR-synced
// VRPs), dirty-set invalidation, snapshot delta application — and the
// subsystem's correctness gate: on every tick of a randomized churn
// sequence the delta-applied snapshot must render byte-identically to a
// from-scratch full rebuild across all /v1/* endpoints.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "delta/churn.hpp"
#include "delta/pipeline.hpp"
#include "serve/snapshot.hpp"
#include "web/ecosystem.hpp"

namespace ripki::delta {
namespace {

constexpr std::uint32_t kVictimFallback = 0xFFFFFFFFu;

web::EcosystemConfig small_config() {
  web::EcosystemConfig config;
  config.seed = 11;
  config.domain_count = 1'200;
  config.rank_space = 100'000;
  config.isp_count = 150;
  config.hoster_count = 60;
  config.enterprise_count = 200;
  config.transit_count = 30;
  return config;
}

/// One generated ecosystem shared by every pipeline test (the expensive
/// part); each test builds its own IncrementalPipeline over it.
class DeltaPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { eco_ = web::Ecosystem::generate(small_config()).release(); }
  static void TearDownTestSuite() {
    delete eco_;
    eco_ = nullptr;
  }

  static web::Ecosystem* eco_;
};

web::Ecosystem* DeltaPipelineTest::eco_ = nullptr;

// --- churn generator ---------------------------------------------------------

ChurnUniverse toy_universe() {
  ChurnUniverse universe;
  universe.domain_count = 500;
  for (int i = 0; i < 8; ++i) {
    auto p = net::Prefix::parse("10." + std::to_string(i) + ".0.0/16");
    EXPECT_TRUE(p.ok());
    universe.announced_prefixes.push_back(p.value());
    rpki::Vrp vrp{p.value(), 24, net::Asn(65000 + i)};
    if (i < 4) {
      universe.initial_vrps.push_back(vrp);
    } else {
      universe.candidate_vrps.push_back(vrp);
    }
  }
  return universe;
}

TEST(TickGenerator, DeterministicReplay) {
  ChurnConfig config;
  config.seed = 77;
  TickGenerator a(config, toy_universe());
  TickGenerator b(config, toy_universe());
  for (int i = 0; i < 50; ++i) {
    const Tick ta = a.next();
    const Tick tb = b.next();
    EXPECT_EQ(ta, tb) << "tick " << i;
    EXPECT_EQ(ta.number, static_cast<std::uint64_t>(i + 1));
    EXPECT_GE(ta.domain_adds.size() + ta.domain_removes.size() +
                  ta.cname_retargets.size(),
              1u);
  }
  EXPECT_EQ(a.ticks_generated(), 50u);
}

TEST(TickGenerator, SeedChangesTheTrace) {
  ChurnConfig a_config;
  a_config.seed = 1;
  ChurnConfig b_config;
  b_config.seed = 2;
  TickGenerator a(a_config, toy_universe());
  TickGenerator b(b_config, toy_universe());
  bool diverged = false;
  for (int i = 0; i < 10 && !diverged; ++i) {
    diverged = !(a.next() == b.next());
  }
  EXPECT_TRUE(diverged);
}

TEST(TickGenerator, NeverEmitsConflictingEvents) {
  ChurnConfig config;
  config.seed = 5;
  config.domain_churn_fraction = 0.05;
  config.prefix_withdraws_per_tick = 2;
  config.prefix_announces_per_tick = 2;
  const ChurnUniverse universe = toy_universe();
  TickGenerator gen(config, universe);

  std::set<net::Prefix> announced(universe.announced_prefixes.begin(),
                                  universe.announced_prefixes.end());
  std::set<rpki::Vrp> live(universe.initial_vrps.begin(),
                           universe.initial_vrps.end());
  std::vector<char> active(500, 1);
  for (std::uint32_t row : initial_inactive_rows(config, 500)) active[row] = 0;

  for (int i = 0; i < 120; ++i) {
    const Tick tick = gen.next();
    for (std::uint32_t row : tick.domain_removes) {
      ASSERT_TRUE(active[row]) << "remove of inactive row " << row;
      active[row] = 0;
    }
    for (std::uint32_t row : tick.domain_adds) {
      ASSERT_FALSE(active[row]) << "add of active row " << row;
      active[row] = 1;
    }
    for (std::uint32_t row : tick.cname_retargets) {
      ASSERT_TRUE(active[row]) << "retarget of inactive row " << row;
    }
    for (const auto& prefix : tick.prefix_withdraws) {
      ASSERT_EQ(announced.erase(prefix), 1u) << "double withdraw";
    }
    for (const auto& prefix : tick.prefix_announces) {
      ASSERT_TRUE(announced.insert(prefix).second) << "double announce";
    }
    for (const auto& vrp : tick.roa_publishes) {
      ASSERT_TRUE(live.insert(vrp).second) << "publish of live VRP";
    }
    for (const auto& vrp : tick.roa_revokes) {
      ASSERT_EQ(live.erase(vrp), 1u) << "revoke of unpublished VRP";
    }
  }
}

TEST(TickGenerator, RoaEventsArriveWithModeledDelay) {
  ChurnConfig config;
  config.seed = 9;
  config.roa_publishes_per_tick = 2;
  config.roa_revokes_per_tick = 1;
  config.max_publication_delay_ticks = 3;
  TickGenerator gen(config, toy_universe());

  // The first tick can never carry a ROA event: every signing decision
  // publishes at least one tick later.
  const Tick first = gen.next();
  EXPECT_TRUE(first.roa_publishes.empty());
  EXPECT_TRUE(first.roa_revokes.empty());

  std::size_t published = 0;
  for (int i = 0; i < 20; ++i) published += gen.next().roa_publishes.size();
  EXPECT_GT(published, 0u);
  // The universe only offers four publish candidates; each is used once.
  EXPECT_LE(published, 4u);
}

TEST(InitialInactiveRows, PureFunctionOfConfigAndCount) {
  ChurnConfig config;
  config.seed = 13;
  config.initial_inactive_fraction = 0.10;
  const auto a = initial_inactive_rows(config, 400);
  const auto b = initial_inactive_rows(config, 400);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 40u);
  std::set<std::uint32_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
  for (std::uint32_t row : a) EXPECT_LT(row, 400u);

  config.seed = 14;
  EXPECT_NE(initial_inactive_rows(config, 400), a);

  config.initial_inactive_fraction = 0.0;
  EXPECT_TRUE(initial_inactive_rows(config, 400).empty());
}

// --- pipeline world ----------------------------------------------------------

TEST_F(DeltaPipelineTest, InitPublishesGenerationOne) {
  DeltaConfig config;
  IncrementalPipeline pipeline(*eco_, config);
  pipeline.init();

  EXPECT_EQ(pipeline.generation(), 1u);
  EXPECT_EQ(pipeline.row_count(), eco_->domain_count());
  ASSERT_NE(pipeline.snapshot(), nullptr);
  EXPECT_EQ(pipeline.snapshot()->generation(), 1u);
  EXPECT_EQ(pipeline.snapshot()->parent_generation(), 0u);
  EXPECT_FALSE(pipeline.snapshot()->delta_applied());
  EXPECT_TRUE(pipeline.rtr_in_sync());

  const auto universe = pipeline.universe();
  EXPECT_EQ(universe.domain_count, eco_->domain_count());
  EXPECT_GT(universe.announced_prefixes.size(), 0u);
  EXPECT_GT(universe.initial_vrps.size(), 0u);
  EXPECT_GT(universe.candidate_vrps.size(), 0u);

  // Fresh init must already agree with its own oracle.
  const auto oracle = pipeline.full_rebuild();
  const auto report = pipeline.check_against(*oracle);
  EXPECT_TRUE(report.identical) << report.divergence;
}

TEST_F(DeltaPipelineTest, EmptyTickPublishesUnchangedGeneration) {
  DeltaConfig config;
  IncrementalPipeline pipeline(*eco_, config);
  pipeline.init();
  const std::string before = pipeline.snapshot()->summary_json();

  Tick tick;
  tick.number = 1;
  const TickStats stats = pipeline.apply_tick(tick);
  EXPECT_EQ(stats.dirty_rows, 0u);
  EXPECT_EQ(stats.changed_rows, 0u);
  EXPECT_EQ(pipeline.generation(), 2u);
  EXPECT_EQ(pipeline.snapshot()->generation(), 2u);
  EXPECT_EQ(pipeline.snapshot()->parent_generation(), 1u);

  const auto report = pipeline.check_against(*pipeline.full_rebuild());
  EXPECT_TRUE(report.identical) << report.divergence;
  // Identical world, new generation: only the lineage stamps move.
  EXPECT_EQ(before.find("\"excluded_dns\""),
            pipeline.snapshot()->summary_json().find("\"excluded_dns\""));
}

TEST_F(DeltaPipelineTest, DomainRemoveFlowsIntoSnapshotDelta) {
  DeltaConfig config;
  config.churn.initial_inactive_fraction = 0.0;
  IncrementalPipeline pipeline(*eco_, config);
  pipeline.init();

  // Find a row that currently resolves, then suppress it.
  std::uint32_t victim = kVictimFallback;
  for (std::uint32_t row = 0; row < pipeline.row_count(); ++row) {
    const auto view = pipeline.dataset().domains.view(row);
    if (!view.excluded_dns) {
      victim = row;
      break;
    }
  }
  ASSERT_NE(victim, kVictimFallback);

  Tick tick;
  tick.number = 1;
  tick.domain_removes.push_back(victim);
  const TickStats stats = pipeline.apply_tick(tick);

  EXPECT_GE(stats.dns_dirty_names, 1u);
  EXPECT_GE(stats.dirty_rows, 1u);
  EXPECT_GE(stats.changed_rows, 1u);
  EXPECT_TRUE(pipeline.snapshot()->delta_applied());
  EXPECT_EQ(pipeline.snapshot()->generation(), 2u);
  EXPECT_EQ(pipeline.snapshot()->parent_generation(), 1u);

  const auto record = pipeline.snapshot()->find_domain(
      std::string(eco_->plan_name(victim)));
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->excluded_dns);

  const auto report = pipeline.check_against(*pipeline.full_rebuild());
  EXPECT_TRUE(report.identical) << report.divergence;
}

// --- the gate: ≥20-tick randomized churn, byte-identical oracle every tick ---

TEST_F(DeltaPipelineTest, TwentyTickChurnMatchesOracleEveryTick) {
  DeltaConfig config;
  config.churn.seed = 23;
  config.churn.domain_churn_fraction = 0.01;
  IncrementalPipeline pipeline(*eco_, config);
  pipeline.init();
  TickGenerator gen(config.churn, pipeline.universe());

  std::size_t rib_withdrawn = 0;
  std::size_t vrp_added = 0;
  std::size_t vrp_removed = 0;
  std::size_t changed_rows = 0;

  for (int i = 0; i < 20; ++i) {
    const Tick tick = gen.next();
    const TickStats stats = pipeline.apply_tick(tick);
    EXPECT_EQ(stats.generation, static_cast<std::uint64_t>(i + 2));
    EXPECT_TRUE(stats.rtr_in_sync) << "tick " << tick.number;
    rib_withdrawn += stats.rib_withdrawn;
    vrp_added += stats.vrp_added;
    vrp_removed += stats.vrp_removed;
    changed_rows += stats.changed_rows;

    const auto oracle = pipeline.full_rebuild();
    const auto report = pipeline.check_against(*oracle);
    ASSERT_TRUE(report.identical)
        << "tick " << tick.number << ": " << report.divergence;
    EXPECT_GT(report.endpoints_checked, 2u);
  }

  // The sequence must actually exercise every layer, or the oracle
  // identity is vacuous.
  EXPECT_GT(rib_withdrawn, 0u);
  EXPECT_GT(vrp_added, 0u);
  EXPECT_GT(vrp_removed, 0u);
  EXPECT_GT(changed_rows, 0u);
  EXPECT_EQ(pipeline.ticks_applied(), 20u);
  EXPECT_EQ(pipeline.history().size(), 20u);

  const std::string deltaz = pipeline.deltaz_json();
  EXPECT_NE(deltaz.find("\"ticks\":20"), std::string::npos);
  EXPECT_NE(deltaz.find("\"rtr_in_sync\":true"), std::string::npos);
  EXPECT_NE(deltaz.find("\"history\":[{"), std::string::npos);
}

TEST_F(DeltaPipelineTest, HeavyChurnCompactsAndStaysIdentical) {
  DeltaConfig config;
  config.churn.seed = 31;
  config.churn.domain_churn_fraction = 0.20;  // 240 rows/tick vs 1200 rows
  config.compact_denominator = 2;
  IncrementalPipeline pipeline(*eco_, config);
  pipeline.init();
  TickGenerator gen(config.churn, pipeline.universe());

  bool compacted = false;
  for (int i = 0; i < 6; ++i) {
    const TickStats stats = pipeline.apply_tick(gen.next());
    if (stats.compacted) {
      compacted = true;
      EXPECT_EQ(stats.overlay_size, 0u);
      EXPECT_FALSE(pipeline.snapshot()->delta_applied());
    }
    const auto report = pipeline.check_against(*pipeline.full_rebuild());
    ASSERT_TRUE(report.identical) << "tick " << i + 1 << ": " << report.divergence;
  }
  EXPECT_TRUE(compacted);
  EXPECT_GT(pipeline.compactions(), 0u);
}

}  // namespace
}  // namespace ripki::delta
