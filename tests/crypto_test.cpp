#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "crypto/uint256.hpp"
#include "util/prng.hpp"
#include "util/strings.hpp"

#include <string>

namespace ripki::crypto {
namespace {

std::span<const std::uint8_t> as_span(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// --- SHA-256: FIPS 180-4 / NIST test vectors -------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(digest_hex(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte input exercises the "padding spills to a second block" path.
  const std::string input(64, 'x');
  const Digest one_shot = sha256(input);
  Sha256 incremental;
  incremental.update(input.substr(0, 13));
  incremental.update(input.substr(13));
  EXPECT_EQ(one_shot, incremental.finish());
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string input =
      "The quick brown fox jumps over the lazy dog, repeatedly and at length, "
      "to exercise multi-block hashing with odd chunk boundaries.";
  for (std::size_t chunk : {1u, 3u, 7u, 64u, 100u}) {
    Sha256 hasher;
    for (std::size_t i = 0; i < input.size(); i += chunk) {
      hasher.update(std::string_view(input).substr(i, chunk));
    }
    EXPECT_EQ(hasher.finish(), sha256(input)) << "chunk=" << chunk;
  }
}

// --- HMAC-SHA256: RFC 4231 test vectors -------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  const auto mac = hmac_sha256(key, "Hi There");
  EXPECT_EQ(util::to_hex(mac.data(), mac.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto mac = hmac_sha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(util::to_hex(mac.data(), mac.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string msg(50, '\xdd');
  const auto mac = hmac_sha256(key, msg);
  EXPECT_EQ(util::to_hex(mac.data(), mac.size()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const std::string key(131, '\xaa');
  const auto mac = hmac_sha256(key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(util::to_hex(mac.data(), mac.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  EXPECT_NE(hmac_sha256("key1", "msg"), hmac_sha256("key2", "msg"));
  EXPECT_NE(hmac_sha256("key", "msg1"), hmac_sha256("key", "msg2"));
}

// --- U256 --------------------------------------------------------------------

TEST(U256, ByteRoundTrip) {
  util::Prng prng(5);
  for (int i = 0; i < 50; ++i) {
    const U256 x = U256::random_bits(prng, 256);
    const auto bytes = x.to_bytes_be();
    EXPECT_EQ(U256::from_bytes_be(bytes.data(), bytes.size()), x);
  }
}

TEST(U256, HexFormat) {
  EXPECT_EQ(U256(0xDEADBEEF).to_hex(),
            "00000000000000000000000000000000000000000000000000000000deadbeef");
}

TEST(U256, CompareAndBitLength) {
  EXPECT_LT(U256(1), U256(2));
  EXPECT_EQ(U256(0).bit_length(), 0);
  EXPECT_EQ(U256(1).bit_length(), 1);
  EXPECT_EQ(U256(255).bit_length(), 8);
  const U256 big(1, 0, 0, 0);  // 2^192
  EXPECT_EQ(big.bit_length(), 193);
  EXPECT_GT(big, U256(UINT64_MAX));
}

TEST(U256, AddSubInverse) {
  util::Prng prng(6);
  for (int i = 0; i < 100; ++i) {
    const U256 a = U256::random_bits(prng, 200);
    const U256 b = U256::random_bits(prng, 190);
    EXPECT_EQ(a.add(b).sub(b), a);
    EXPECT_EQ(a.add(b).sub(a), b);
  }
}

TEST(U256, ShiftInverse) {
  util::Prng prng(7);
  for (int i = 0; i < 50; ++i) {
    const U256 a = U256::random_bits(prng, 255);
    EXPECT_EQ(a.shl1().shr1(), a);
  }
}

TEST(U256, DivModIdentity) {
  util::Prng prng(8);
  for (int i = 0; i < 60; ++i) {
    const U256 a = U256::random_bits(prng, 250);
    const U256 d = U256::random_bits(prng, 2 + static_cast<int>(prng.uniform(200)));
    U256 rem;
    const U256 q = U256::divmod(a, d, &rem);
    EXPECT_LT(rem, d);
    // a == q*d + rem, verified via mulmod against a modulus > a.
    const U256 big_mod(1ULL << 62, 0, 0, 0);
    const U256 qd = U256::mulmod(q, d, big_mod);
    EXPECT_EQ(qd.add(rem), a);
  }
}

TEST(U256, ModexpSmallNumbers) {
  const U256 m(1000);
  EXPECT_EQ(U256::modexp(U256(2), U256(10), m), U256(24));   // 1024 % 1000
  EXPECT_EQ(U256::modexp(U256(3), U256(0), m), U256(1));
  EXPECT_EQ(U256::modexp(U256(7), U256(1), m), U256(7));
  // Odd modulus exercises the Montgomery path.
  const U256 m2(1009);  // prime
  EXPECT_EQ(U256::modexp(U256(5), U256(1008), m2), U256(1));  // Fermat
}

TEST(U256, MontgomeryMatchesGenericPath) {
  util::Prng prng(9);
  for (int i = 0; i < 30; ++i) {
    U256 m = U256::random_bits(prng, 128);
    if (!m.is_odd()) m = m.add(U256(1));
    const U256 base = U256::random_bits(prng, 100);
    const U256 exp = U256::random_bits(prng, 20);
    // Generic reference: repeated mulmod.
    U256 reference(1);
    reference = U256::mod(reference, m);
    U256 b = U256::mod(base, m);
    for (int bit = 0; bit < exp.bit_length(); ++bit) {
      if (exp.bit(bit)) reference = U256::mulmod(reference, b, m);
      b = U256::mulmod(b, b, m);
    }
    EXPECT_EQ(U256::modexp(base, exp, m), reference);
  }
}

TEST(U256, GcdAndModInverse) {
  EXPECT_EQ(U256::gcd(U256(48), U256(18)), U256(6));
  EXPECT_EQ(U256::gcd(U256(17), U256(5)), U256(1));

  U256 inv;
  ASSERT_TRUE(U256::modinv(U256(3), U256(11), inv));
  EXPECT_EQ(inv, U256(4));  // 3*4 = 12 ≡ 1 mod 11
  EXPECT_FALSE(U256::modinv(U256(4), U256(8), inv));  // gcd != 1

  util::Prng prng(10);
  for (int i = 0; i < 25; ++i) {
    const U256 m = U256::random_bits(prng, 120);
    const U256 a = U256::random_bits(prng, 100);
    if (U256::gcd(a, m) != U256(1)) continue;
    ASSERT_TRUE(U256::modinv(a, m, inv));
    EXPECT_EQ(U256::mulmod(a, inv, m), U256::mod(U256(1), m));
  }
}

TEST(U256, RandomBelowRespectsBound) {
  util::Prng prng(11);
  const U256 bound = U256::random_bits(prng, 130);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(U256::random_below(prng, bound), bound);
  }
}

TEST(U256, RandomBitsSetsTopBit) {
  util::Prng prng(12);
  for (int bits : {2, 8, 64, 65, 128, 200, 256}) {
    const U256 x = U256::random_bits(prng, bits);
    EXPECT_EQ(x.bit_length(), bits);
  }
}

// --- primality ----------------------------------------------------------------

TEST(Primality, KnownSmallPrimes) {
  util::Prng prng(13);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 101ULL, 65537ULL}) {
    EXPECT_TRUE(is_probable_prime(U256(p), prng)) << p;
  }
  for (std::uint64_t c : {0ULL, 1ULL, 4ULL, 100ULL, 65535ULL, 99ULL}) {
    EXPECT_FALSE(is_probable_prime(U256(c), prng)) << c;
  }
}

TEST(Primality, LargeKnownPrime) {
  util::Prng prng(14);
  // 2^127 - 1 is a Mersenne prime.
  const U256 m127 = U256(0, 0, 0x7FFFFFFFFFFFFFFFULL, UINT64_MAX);
  EXPECT_TRUE(is_probable_prime(m127, prng));
  EXPECT_FALSE(is_probable_prime(m127.add(U256(2)), prng));
}

TEST(Primality, GeneratedPrimesHaveRequestedSize) {
  util::Prng prng(15);
  for (int i = 0; i < 3; ++i) {
    const U256 p = generate_prime(prng, 128);
    EXPECT_EQ(p.bit_length(), 128);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, prng));
  }
}

// --- RSA -----------------------------------------------------------------------

TEST(Rsa, SignVerifyRoundTrip) {
  util::Prng prng(16);
  const KeyPair keys = generate_keypair(prng);
  const std::string message = "route origin authorization";
  const Signature sig = sign(keys.priv, as_span(message));
  EXPECT_TRUE(verify(keys.pub, as_span(message), sig));
}

TEST(Rsa, TamperedMessageFails) {
  util::Prng prng(17);
  const KeyPair keys = generate_keypair(prng);
  const std::string message = "authentic bytes";
  const Signature sig = sign(keys.priv, as_span(message));
  const std::string tampered = "authentic byteZ";
  EXPECT_FALSE(verify(keys.pub, as_span(tampered), sig));
}

TEST(Rsa, TamperedSignatureFails) {
  util::Prng prng(18);
  const KeyPair keys = generate_keypair(prng);
  const std::string message = "authentic bytes";
  Signature sig = sign(keys.priv, as_span(message));
  sig[31] ^= 0x01;
  EXPECT_FALSE(verify(keys.pub, as_span(message), sig));
}

TEST(Rsa, WrongKeyFails) {
  util::Prng prng(19);
  const KeyPair a = generate_keypair(prng);
  const KeyPair b = generate_keypair(prng);
  const std::string message = "signed by a";
  const Signature sig = sign(a.priv, as_span(message));
  EXPECT_FALSE(verify(b.pub, as_span(message), sig));
}

TEST(Rsa, KeyIdIsStable) {
  util::Prng prng(20);
  const KeyPair keys = generate_keypair(prng);
  EXPECT_EQ(keys.pub.key_id(), keys.pub.key_id());
  const KeyPair other = generate_keypair(prng);
  EXPECT_NE(keys.pub.key_id(), other.pub.key_id());
}

TEST(Rsa, PublicKeyEncodingRoundTrip) {
  util::Prng prng(21);
  const KeyPair keys = generate_keypair(prng);
  const auto bytes = encode_public_key(keys.pub);
  const PublicKey decoded = decode_public_key(bytes);
  EXPECT_EQ(decoded, keys.pub);
}

TEST(Rsa, DistinctKeypairs) {
  util::Prng prng(22);
  const KeyPair a = generate_keypair(prng);
  const KeyPair b = generate_keypair(prng);
  EXPECT_NE(a.pub.n, b.pub.n);
}

// --- Fast modexp vs schoolbook reference -----------------------------------

TEST(U256, FixedWindowMatchesSchoolbook) {
  // Exponent widths straddle the binary-ladder/fixed-window dispatch
  // threshold (64 bits) so both Montgomery ladders are exercised against
  // the division-based reference.
  util::Prng prng(23);
  for (const int exp_bits : {1, 8, 40, 63, 64, 65, 128, 200, 254}) {
    for (int i = 0; i < 10; ++i) {
      U256 m = U256::random_bits(prng, 256);
      if (!m.is_odd()) m = m.add(U256(1));
      const U256 base = U256::random_bits(prng, 256);
      const U256 exp = U256::random_bits(prng, exp_bits);
      EXPECT_EQ(U256::modexp(base, exp, m), U256::modexp_schoolbook(base, exp, m))
          << "exp_bits=" << exp_bits << " iter=" << i;
    }
  }
}

TEST(U256, ModexpEvenModulusMatchesSchoolbook) {
  // Even moduli cannot take the Montgomery path; the dispatcher must fall
  // back to the generic reduction and still agree with the reference.
  util::Prng prng(24);
  for (int i = 0; i < 20; ++i) {
    U256 m = U256::random_bits(prng, 180);
    if (m.is_odd()) m = m.add(U256(1));
    const U256 base = U256::random_bits(prng, 200);
    const U256 exp = U256::random_bits(prng, 90);
    EXPECT_EQ(U256::modexp(base, exp, m), U256::modexp_schoolbook(base, exp, m));
  }
}

TEST(U256, ModexpEdgeExponents) {
  util::Prng prng(25);
  U256 m = U256::random_bits(prng, 256);
  if (!m.is_odd()) m = m.add(U256(1));
  const U256 base = U256::random_bits(prng, 255);
  EXPECT_EQ(U256::modexp(base, U256(0), m), U256::mod(U256(1), m));
  EXPECT_EQ(U256::modexp(base, U256(1), m), U256::mod(base, m));
  // RSA's public exponent, the short-ladder hot case.
  EXPECT_EQ(U256::modexp(base, U256(65537), m),
            U256::modexp_schoolbook(base, U256(65537), m));
  EXPECT_EQ(U256::modexp(base, U256(65537), U256(1)), U256(0));  // m == 1
}

TEST(U256, ModexpThreadLocalContextSurvivesModulusSwitch) {
  // The per-modulus Montgomery memo must not leak state across moduli
  // when a caller alternates between keys (validator walking two CAs).
  util::Prng prng(26);
  U256 m1 = U256::random_bits(prng, 200);
  if (!m1.is_odd()) m1 = m1.add(U256(1));
  U256 m2 = U256::random_bits(prng, 200);
  if (!m2.is_odd()) m2 = m2.add(U256(1));
  const U256 base = U256::random_bits(prng, 190);
  const U256 exp = U256::random_bits(prng, 150);
  const U256 want1 = U256::modexp_schoolbook(base, exp, m1);
  const U256 want2 = U256::modexp_schoolbook(base, exp, m2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(U256::modexp(base, exp, m1), want1);
    EXPECT_EQ(U256::modexp(base, exp, m2), want2);
  }
}

TEST(Rsa, EveryBitFlipInSignatureRejected) {
  util::Prng prng(27);
  const KeyPair keys = generate_keypair(prng);
  const std::string message = "route origin authorization payload";
  const Signature good = sign(keys.priv, as_span(message));
  ASSERT_TRUE(verify(keys.pub, as_span(message), good));
  for (std::size_t bit = 0; bit < good.size() * 8; ++bit) {
    Signature flipped = good;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(verify(keys.pub, as_span(message), flipped)) << "bit " << bit;
  }
}

TEST(Rsa, WrongModulusAndWrongExponentKeysRejected) {
  util::Prng prng(28);
  const KeyPair keys = generate_keypair(prng);
  const KeyPair other = generate_keypair(prng);
  const std::string message = "signed under keys.priv";
  const Signature sig = sign(keys.priv, as_span(message));

  PublicKey wrong_modulus = keys.pub;
  wrong_modulus.n = other.pub.n;
  EXPECT_FALSE(verify(wrong_modulus, as_span(message), sig));

  PublicKey wrong_exponent = keys.pub;
  wrong_exponent.e = U256(3);
  EXPECT_FALSE(verify(wrong_exponent, as_span(message), sig));
}

TEST(Sha256, OneShotMatchesIncrementalEveryShortLength) {
  // Lengths 0..70 cross the single-block fast-path boundary (55 bytes)
  // and the padding-spills-to-second-block region (56..64).
  for (std::size_t len = 0; len <= 70; ++len) {
    const std::string input(len, static_cast<char>('a' + (len % 26)));
    Sha256 incremental;
    incremental.update(input);
    EXPECT_EQ(digest_hex(sha256(input)), digest_hex(incremental.finish()))
        << "len " << len;
  }
}

}  // namespace
}  // namespace ripki::crypto
