#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/prng.hpp"
#include "util/result.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/url.hpp"

#include <set>
#include <sstream>

namespace ripki::util {
namespace {

// --- Result ----------------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(Result, HoldsError) {
  Result<int> r = Err("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_EQ(r.value_or(3), 3);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Err("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
}

// --- Prng -------------------------------------------------------------------

TEST(Prng, DeterministicForSeed) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Prng, UniformRespectsBound) {
  Prng prng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(prng.uniform(bound), bound);
  }
}

TEST(Prng, UniformCoversSmallRange) {
  Prng prng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(prng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, UniformRangeInclusive) {
  Prng prng(11);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = prng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= v == -3;
    hi_seen |= v == 3;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Prng, Uniform01InRange) {
  Prng prng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = prng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, BernoulliExtremes) {
  Prng prng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(prng.bernoulli(0.0));
    EXPECT_TRUE(prng.bernoulli(1.0));
  }
}

TEST(Prng, BernoulliApproximatesProbability) {
  Prng prng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += prng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Prng, ZipfStaysInRange) {
  Prng prng(23);
  for (int i = 0; i < 2000; ++i) {
    const auto k = prng.zipf(100, 1.1);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100u);
  }
}

TEST(Prng, ZipfFavoursLowRanks) {
  Prng prng(29);
  std::uint64_t low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (prng.zipf(1000, 1.0) <= 10) ++low;
  }
  // For s=1, P(k <= 10) ≈ H(10)/H(1000) ≈ 0.39; far above uniform (1%).
  EXPECT_GT(low, static_cast<std::uint64_t>(n) / 5);
}

TEST(Prng, GeometricAtLeastOne) {
  Prng prng(31);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto k = prng.geometric_at_least_one(3.0);
    EXPECT_GE(k, 1u);
    sum += static_cast<double>(k);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.25);
}

TEST(Prng, PermutationIsPermutation) {
  Prng prng(37);
  const auto perm = prng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Prng, SplitProducesIndependentStream) {
  Prng a(41);
  Prng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Mix64, AvalanchesSingleBit) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), mix64(1));
}

// --- ByteWriter / ByteReader -------------------------------------------------

TEST(Bytes, RoundTripPrimitives) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0102030405060708ULL);
  w.put_string("hi");
  const Bytes buf = std::move(w).take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0102030405060708ULL);
  EXPECT_EQ(r.string(2).value(), "hi");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.put_u16(0x0102);
  w.put_u32(0x03040506);
  const Bytes buf = std::move(w).take();
  const Bytes expected = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(buf, expected);
}

TEST(Bytes, TruncatedReadsFail) {
  const Bytes buf = {1, 2, 3};
  ByteReader r(buf);
  EXPECT_FALSE(r.u32().ok());
  // Failed read leaves the cursor untouched.
  EXPECT_EQ(r.u16().value(), 0x0102);
  EXPECT_FALSE(r.u16().ok());
  EXPECT_EQ(r.u8().value(), 3);
}

TEST(Bytes, SkipAndSeek) {
  const Bytes buf = {1, 2, 3, 4};
  ByteReader r(buf);
  EXPECT_TRUE(r.skip(2).ok());
  EXPECT_EQ(r.u8().value(), 3);
  EXPECT_TRUE(r.seek(0).ok());
  EXPECT_EQ(r.u8().value(), 1);
  EXPECT_FALSE(r.seek(5).ok());
  EXPECT_FALSE(r.skip(10).ok());
}

TEST(Bytes, PatchBackfillsLengths) {
  ByteWriter w;
  w.put_u16(0);
  w.put_u32(0);
  w.put_u8(9);
  w.patch_u16(0, 0xBEEF);
  w.patch_u32(2, 0xCAFEBABE);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0xCAFEBABEu);
}

TEST(Bytes, ViewAliasesWithoutCopy) {
  const Bytes buf = {10, 20, 30};
  ByteReader r(buf);
  const auto view = r.view(2).value();
  EXPECT_EQ(view.data(), buf.data());
  EXPECT_EQ(view.size(), 2u);
}

// --- strings -----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AkAMai"), "akamai");
  EXPECT_TRUE(iequals("AKAMAI", "akamai"));
  EXPECT_FALSE(iequals("akamai", "akama"));
  EXPECT_TRUE(icontains("INTERNAP-BLK Network Services", "internap"));
  EXPECT_FALSE(icontains("Cloudflare Inc", "akamai"));
  EXPECT_TRUE(icontains("anything", ""));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("www.example.com", "www."));
  EXPECT_FALSE(starts_with("example.com", "www."));
  EXPECT_TRUE(ends_with("a495.g.akamai.net", ".akamai.net"));
  EXPECT_FALSE(ends_with("net", ".akamai.net"));
}

TEST(Strings, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12a", v));
  EXPECT_FALSE(parse_u64("-1", v));
}

TEST(Strings, HexAndFormat) {
  const std::vector<std::uint8_t> data = {0x00, 0xFF, 0x5A};
  EXPECT_EQ(to_hex(data), "00ff5a");
  EXPECT_EQ(format_percent(0.0612, 1), "6.1%");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(42), "42");
}

// --- stats ---------------------------------------------------------------

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  EXPECT_EQ(acc.mean(), 0.0);
  acc.add(2);
  acc.add(4);
  acc.add(6);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
  EXPECT_NEAR(acc.variance(), 8.0 / 3.0, 1e-12);
}

TEST(Stats, AccumulatorMerge) {
  Accumulator a;
  Accumulator b;
  a.add(1);
  a.add(2);
  b.add(3);
  b.add(4);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(Stats, BinnerAssignsPaperBins) {
  RankBinner binner(1'000'000, 10'000);
  EXPECT_EQ(binner.bin_count(), 100u);
  EXPECT_EQ(binner.bin_index(1), 0u);
  EXPECT_EQ(binner.bin_index(10'000), 0u);
  EXPECT_EQ(binner.bin_index(10'001), 1u);
  EXPECT_EQ(binner.bin_index(1'000'000), 99u);
  EXPECT_EQ(binner.bin_index(2'000'000), 99u);  // clamped
  EXPECT_EQ(binner.bin_lo(0), 1u);
  EXPECT_EQ(binner.bin_hi(0), 10'000u);
  EXPECT_EQ(binner.bin_lo(99), 990'001u);
  EXPECT_EQ(binner.bin_hi(99), 1'000'000u);
}

TEST(Stats, BinnerAccumulates) {
  RankBinner binner(100, 10);
  binner.add(5, 1.0);
  binner.add(7, 3.0);
  binner.add(95, 10.0);
  EXPECT_DOUBLE_EQ(binner.bin(0).mean(), 2.0);
  EXPECT_DOUBLE_EQ(binner.bin(9).mean(), 10.0);
  const auto means = binner.bin_means();
  EXPECT_EQ(means.size(), 10u);
  EXPECT_DOUBLE_EQ(means[1], 0.0);  // empty bin reports 0
}

TEST(Stats, BinnerRoundsUpPartialBin) {
  RankBinner binner(95, 10);
  EXPECT_EQ(binner.bin_count(), 10u);
  EXPECT_EQ(binner.bin_hi(9), 95u);
}

// --- table ----------------------------------------------------------------

TEST(Table, AlignsColumns) {
  TextTable table({"name", "count"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-name  22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  TextTable table({"k", "v"});
  table.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "k,v\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

// --- URL helpers ------------------------------------------------------------

TEST(Url, SplitTarget) {
  const UrlTarget split = split_target("/v1/domain/x?verbose=1&raw");
  EXPECT_EQ(split.path, "/v1/domain/x");
  EXPECT_EQ(split.query, "verbose=1&raw");

  EXPECT_EQ(split_target("/metrics").path, "/metrics");
  EXPECT_TRUE(split_target("/metrics").query.empty());
  // Only the FIRST '?' splits; later ones belong to the query.
  EXPECT_EQ(split_target("/p?a=1?b=2").query, "a=1?b=2");
  EXPECT_TRUE(split_target("").path.empty());
}

TEST(Url, PercentDecode) {
  EXPECT_EQ(percent_decode("10.0.0.0%2F16").value_or(""), "10.0.0.0/16");
  EXPECT_EQ(percent_decode("a%20b%2fc").value_or(""), "a b/c");  // lowercase hex
  EXPECT_EQ(percent_decode("plain").value_or(""), "plain");
  // '+' is a path character here, not a form-encoded space.
  EXPECT_EQ(percent_decode("a+b").value_or(""), "a+b");
  EXPECT_FALSE(percent_decode("bad%zz").has_value());
  EXPECT_FALSE(percent_decode("trunc%2").has_value());
  EXPECT_FALSE(percent_decode("bare%").has_value());
}

TEST(Url, SplitPathSegments) {
  const auto segments = split_path_segments("/v1/prefix/10.0.0.0%2F16/65001");
  ASSERT_TRUE(segments.has_value());
  ASSERT_EQ(segments->size(), 4u);
  EXPECT_EQ((*segments)[0], "v1");
  EXPECT_EQ((*segments)[2], "10.0.0.0/16");

  // Empty segments collapse; root is an empty list.
  EXPECT_EQ(split_path_segments("/v1//domain/")->size(), 2u);
  EXPECT_TRUE(split_path_segments("/")->empty());
  // A bad escape in ANY segment poisons the whole split.
  EXPECT_FALSE(split_path_segments("/v1/bad%GG").has_value());
}

}  // namespace
}  // namespace ripki::util
