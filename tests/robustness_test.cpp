// Decoder robustness: every wire parser in the library is fed thousands of
// randomly mutated (bit-flipped, truncated, extended) versions of valid
// messages. The property under test: parsers either succeed or return an
// error — never crash, hang, or read out of bounds (run under ASan to get
// the full value of this suite).
#include <gtest/gtest.h>

#include "bgp/mrt.hpp"
#include "bgp/update.hpp"
#include "dns/message.hpp"
#include "encoding/tlv.hpp"
#include "rpki/cert.hpp"
#include "rpki/repository.hpp"
#include "rpki/roa.hpp"
#include "rpki/tal.hpp"
#include "rtr/pdu.hpp"
#include "util/prng.hpp"

namespace ripki {
namespace {

/// Applies one random mutation: bit flip, truncation, extension, or a
/// splice of random bytes.
util::Bytes mutate(const util::Bytes& original, util::Prng& prng) {
  util::Bytes out = original;
  switch (prng.uniform(4)) {
    case 0: {  // bit flip(s)
      if (out.empty()) break;
      const int flips = 1 + static_cast<int>(prng.uniform(4));
      for (int i = 0; i < flips; ++i) {
        out[prng.index(out.size())] ^=
            static_cast<std::uint8_t>(1u << prng.uniform(8));
      }
      break;
    }
    case 1: {  // truncate
      if (out.empty()) break;
      out.resize(prng.index(out.size()));
      break;
    }
    case 2: {  // extend with junk
      const std::size_t extra = 1 + prng.index(16);
      for (std::size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<std::uint8_t>(prng.next_u64()));
      }
      break;
    }
    default: {  // overwrite a random window
      if (out.empty()) break;
      const std::size_t start = prng.index(out.size());
      const std::size_t len = std::min(out.size() - start, 1 + prng.index(8));
      for (std::size_t i = 0; i < len; ++i) {
        out[start + i] = static_cast<std::uint8_t>(prng.next_u64());
      }
      break;
    }
  }
  return out;
}

class Robustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Robustness, TlvNeverCrashes) {
  util::Prng prng(GetParam());
  encoding::TlvWriter w;
  w.begin(10);
  w.add_u32(11, 42);
  w.add_string(12, "payload");
  w.end();
  w.add_u64(13, 7);
  const auto valid = std::move(w).take();

  for (int i = 0; i < 2'000; ++i) {
    const auto mutated = mutate(valid, prng);
    auto result = encoding::TlvMap::parse(mutated);
    if (result.ok()) {
      // Walk whatever decoded to force accessor paths too.
      for (const auto& element : result.value().elements()) {
        (void)element.as_u8();
        (void)element.as_u32();
        (void)element.as_string();
      }
    }
  }
}

TEST_P(Robustness, CertificateAndRoaNeverCrash) {
  util::Prng prng(GetParam());
  auto anchor = rpki::make_trust_anchor(
      "RIPE", rpki::ResourceSet({net::Prefix::parse("62.0.0.0/8").value()}),
      rpki::ValidityWindow{0, 4'000'000'000LL}, prng);
  rpki::RepositoryBuilder builder(anchor, rpki::kDefaultNow, prng);
  const auto ca = builder.add_ca(
      "Org", rpki::ResourceSet({net::Prefix::parse("62.1.0.0/16").value()}));
  rpki::RoaContent content;
  content.asn = net::Asn(64512);
  content.prefixes = {
      rpki::RoaPrefix{net::Prefix::parse("62.1.0.0/16").value(), 20}};
  builder.add_roa(ca, content);
  const auto repo = builder.build();

  const auto cert_bytes = repo.points[0].ca_cert.encode();
  const auto roa_bytes = repo.points[0].roas[0].encode();

  for (int i = 0; i < 1'000; ++i) {
    (void)rpki::Certificate::decode(mutate(cert_bytes, prng));
    (void)rpki::Roa::decode(mutate(roa_bytes, prng));
  }
}

TEST_P(Robustness, MrtNeverCrashes) {
  util::Prng prng(GetParam());
  bgp::Rib rib;
  rib.add_peer(bgp::PeerEntry{1, net::IpAddress::v4(192, 0, 2, 1), net::Asn(3320)});
  rib.add(bgp::RibEntry{net::Prefix::parse("10.0.0.0/8").value(),
                        bgp::AsPath::sequence({3320, 100}), 0, 0});
  rib.add(bgp::RibEntry{net::Prefix::parse("2a00::/24").value(),
                        bgp::AsPath::sequence({3320, 200}), 0, 0});
  const auto valid = bgp::mrt::write_table_dump(rib, 1, "fuzz", 0);

  for (int i = 0; i < 1'000; ++i) {
    (void)bgp::mrt::read_table_dump(mutate(valid, prng));
  }
}

TEST_P(Robustness, DnsMessageNeverCrashes) {
  util::Prng prng(GetParam());
  dns::Message m;
  m.id = 7;
  m.is_response = true;
  const auto name = dns::DnsName::parse("www.fuzz-target.example").value();
  m.questions.push_back(dns::Question{name, dns::RecordType::kA});
  m.answers.push_back(dns::ResourceRecord::cname(
      name, dns::DnsName::parse("edge.cdn.example").value()));
  m.answers.push_back(dns::ResourceRecord::a(
      dns::DnsName::parse("edge.cdn.example").value(),
      net::IpAddress::v4(192, 0, 2, 7)));
  const auto valid = dns::encode(m);

  for (int i = 0; i < 2'000; ++i) {
    (void)dns::decode(mutate(valid, prng));
  }
}

TEST_P(Robustness, RtrStreamNeverCrashes) {
  util::Prng prng(GetParam());
  util::ByteWriter w;
  w.put_bytes(rtr::encode(rtr::Pdu{rtr::CacheResponse{3}}, rtr::kVersion1));
  w.put_bytes(rtr::encode(
      rtr::Pdu{rtr::PrefixPdu{true, net::Prefix::parse("10.0.0.0/8").value(), 16,
                              net::Asn(5)}},
      rtr::kVersion1));
  w.put_bytes(rtr::encode(rtr::Pdu{rtr::EndOfData{3, 9}}, rtr::kVersion1));
  const auto valid = w.bytes();

  for (int i = 0; i < 2'000; ++i) {
    (void)rtr::decode_stream(mutate(valid, prng));
  }
}

TEST_P(Robustness, BgpUpdateNeverCrashes) {
  util::Prng prng(GetParam());
  bgp::UpdateMessage update;
  update.as_path = bgp::AsPath::sequence({3320, 1299, 15169});
  update.next_hop = net::IpAddress::v4(192, 0, 2, 1);
  update.nlri = {net::Prefix::parse("208.65.152.0/22").value()};
  update.withdrawn = {net::Prefix::parse("10.0.0.0/8").value()};
  const auto valid = bgp::encode_update(update).value();

  for (int i = 0; i < 2'000; ++i) {
    const auto mutated = mutate(valid, prng);
    util::ByteReader reader(mutated);
    (void)bgp::decode_update(reader);
  }
}

TEST_P(Robustness, TalParserNeverCrashes) {
  util::Prng prng(GetParam());
  const std::string valid =
      "rsync://rpki.ripe.example/ta/ripe.cer\n"
      "QUJDREVGR0hJSktMTU5PUFFSU1RVVldYWVphYmNkZWZnaGlqa2xtbm9wcXJzdHV2d3h5"
      "ekFCQ0RFRkdISUpLTE1OT1A=\n";
  for (int i = 0; i < 2'000; ++i) {
    util::Bytes bytes(valid.begin(), valid.end());
    const auto mutated = mutate(bytes, prng);
    (void)rpki::parse_tal(
        std::string_view(reinterpret_cast<const char*>(mutated.data()),
                         mutated.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Robustness, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace ripki
