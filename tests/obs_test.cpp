// Observability subsystem: counter/gauge/histogram semantics, percentile
// math against known distributions, span nesting and timing monotonicity,
// logger sink capture and level filtering, and JSON/Prometheus export.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "bgp/mrt.hpp"
#include "core/dataset.hpp"
#include "core/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

using namespace ripki;

// --- metrics ---------------------------------------------------------------

TEST(Metrics, CounterIncrementAndSet) {
  obs::Registry registry;
  auto& counter = registry.counter("ripki.test.events");
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.set(7);
  EXPECT_EQ(counter.value(), 7u);
  // Same name resolves to the same metric.
  EXPECT_EQ(&registry.counter("ripki.test.events"), &counter);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::Registry registry;
  auto& gauge = registry.gauge("ripki.test.depth");
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(Metrics, CounterIsThreadSafe) {
  obs::Registry registry;
  auto& counter = registry.counter("ripki.test.parallel");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, HistogramBucketsAndAggregates) {
  obs::Registry registry;
  const double bounds[] = {10, 20, 30};
  auto& hist = registry.histogram("ripki.test.hist", bounds);
  hist.observe(5);    // bucket 0
  hist.observe(10);   // bucket 0 (bounds are inclusive upper edges)
  hist.observe(15);   // bucket 1
  hist.observe(100);  // overflow
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 130.0);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);
  const auto counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Metrics, HistogramPercentilesOnUniformDistribution) {
  obs::Registry registry;
  const double bounds[] = {25, 50, 75, 100};
  auto& hist = registry.histogram("ripki.test.uniform", bounds);
  // 1..100 uniform: 25 observations per bucket. With linear interpolation
  // inside the bucket, the percentiles land exactly on the value.
  for (int v = 1; v <= 100; ++v) hist.observe(v);
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.90), 90.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(hist.percentile(1.00), 100.0);
  // p99 target rank 99 falls inside the last finite bucket: 75 + 24/25*25.
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), 99.0);
}

TEST(Metrics, HistogramPercentileSkewedAndOverflow) {
  obs::Registry registry;
  const double bounds[] = {1, 2};
  auto& hist = registry.histogram("ripki.test.skew", bounds);
  for (int i = 0; i < 99; ++i) hist.observe(0.5);
  hist.observe(1000);  // one outlier in the overflow bucket
  // Median sits inside the first bucket: target rank 50 of the 99
  // first-bucket observations, interpolated across (0, 1].
  EXPECT_NEAR(hist.percentile(0.50), 50.0 / 99.0, 1e-9);
  // Ranks landing in the overflow bucket report the observed max.
  EXPECT_DOUBLE_EQ(hist.percentile(0.999), 1000.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 0.0);  // empty target rank clamps
}

TEST(Metrics, EmptyHistogramPercentileIsZero) {
  obs::Registry registry;
  auto& hist = registry.histogram("ripki.test.empty");
  EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.percentile(1.0), 0.0);
  EXPECT_EQ(hist.count(), 0u);
}

TEST(Metrics, SingleSampleHistogramPercentiles) {
  obs::Registry registry;
  const double bounds[] = {10, 100};
  auto& hist = registry.histogram("ripki.test.single", bounds);
  hist.observe(42);
  // Every rank lands in the one occupied bucket (10, 100]: low ranks
  // interpolate from the bucket's lower edge, and the max cap keeps every
  // rank from exceeding the lone observation.
  EXPECT_DOUBLE_EQ(hist.percentile(0.01), 10.9);  // 10 + 0.01 * 90
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), 42.0);  // 55 capped at max
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(hist.percentile(1.00), 42.0);
}

TEST(Metrics, AllSamplesInOverflowBucketReportMax) {
  obs::Registry registry;
  const double bounds[] = {1, 2};
  auto& hist = registry.histogram("ripki.test.overflow", bounds);
  hist.observe(50);
  hist.observe(70);
  hist.observe(90);
  // Every rank resolves to the overflow bucket, which reports the
  // observed max rather than an interpolation over an unbounded range.
  EXPECT_DOUBLE_EQ(hist.percentile(0.01), 90.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), 90.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), 90.0);
  const auto counts = hist.bucket_counts();
  EXPECT_EQ(counts.back(), 3u);
}

TEST(Metrics, PercentileFromBucketsMatchesHistogram) {
  obs::Registry registry;
  const double bounds[] = {25, 50, 75, 100};
  auto& hist = registry.histogram("ripki.test.shared", bounds);
  for (int v = 1; v <= 100; ++v) hist.observe(v);
  const auto counts = hist.bucket_counts();
  for (const double p : {0.25, 0.50, 0.90, 0.99}) {
    EXPECT_DOUBLE_EQ(
        obs::percentile_from_buckets(bounds, counts, hist.max(), p),
        hist.percentile(p));
  }
}

TEST(Metrics, CollectIsSortedAndComplete) {
  obs::Registry registry;
  registry.counter("ripki.b.counter").inc(3);
  registry.gauge("ripki.a.gauge").set(-5);
  registry.histogram("ripki.c.hist").observe(12.0);
  const auto metrics = registry.collect();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].name, "ripki.a.gauge");
  EXPECT_EQ(metrics[1].name, "ripki.b.counter");
  EXPECT_EQ(metrics[2].name, "ripki.c.hist");
  EXPECT_EQ(metrics[0].gauge_value, -5);
  EXPECT_EQ(metrics[1].counter_value, 3u);
  EXPECT_EQ(metrics[2].count, 1u);
}

// --- spans -----------------------------------------------------------------

TEST(Span, RecordsDurationHistogram) {
  obs::Registry registry;
  {
    obs::Span span(&registry, "outer");
    EXPECT_TRUE(span.active());
    EXPECT_EQ(span.path(), "outer");
  }
  const auto metrics = registry.collect();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].name, "ripki.trace.outer");
  EXPECT_EQ(metrics[0].count, 1u);
}

TEST(Span, NestingBuildsDottedPathsAndParentCoversChild) {
  obs::Registry registry;
  {
    obs::Span outer(&registry, "outer");
    {
      obs::Span inner(&registry, "inner");
      EXPECT_EQ(inner.path(), "outer.inner");
      EXPECT_EQ(obs::Span::current(), &inner);
    }
    EXPECT_EQ(obs::Span::current(), &outer);
  }
  EXPECT_EQ(obs::Span::current(), nullptr);

  double outer_sum = 0, inner_sum = 0;
  for (const auto& m : registry.collect()) {
    if (m.name == "ripki.trace.outer") outer_sum = m.sum;
    if (m.name == "ripki.trace.outer.inner") inner_sum = m.sum;
  }
  EXPECT_GT(inner_sum, 0.0);
  // The parent's clock ran the whole time the child's did: monotonicity.
  EXPECT_GE(outer_sum, inner_sum);
}

TEST(Span, StopIsIdempotentAndEndsNesting) {
  obs::Registry registry;
  obs::Span span(&registry, "once");
  span.stop();
  span.stop();
  EXPECT_EQ(obs::Span::current(), nullptr);
  double count = 0;
  for (const auto& m : registry.collect()) {
    if (m.name == "ripki.trace.once") count = static_cast<double>(m.count);
  }
  EXPECT_EQ(count, 1.0);
}

TEST(Span, NullRegistryIsInert) {
  obs::Span span(nullptr, "ignored");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.path(), "");
  EXPECT_EQ(span.elapsed_ns(), 0u);
  EXPECT_EQ(obs::Span::current(), nullptr);
  span.stop();  // no-op, no crash
  obs::record_duration_ns(nullptr, "ignored", 123);
}

TEST(Span, RecordDurationNsUsesCurrentPath) {
  obs::Registry registry;
  {
    obs::Span outer(&registry, "parse");
    obs::record_duration_ns(&registry, "insert", 2'000);  // 2µs
  }
  bool found = false;
  for (const auto& m : registry.collect()) {
    if (m.name == "ripki.trace.parse.insert") {
      found = true;
      EXPECT_DOUBLE_EQ(m.sum, 2.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Span, StageReportListsEverySpan) {
  obs::Registry registry;
  {
    obs::Span a(&registry, "alpha");
    obs::Span b(&registry, "beta");
  }
  const std::string report = obs::stage_report(registry);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("alpha.beta"), std::string::npos);
  EXPECT_NE(report.find("calls"), std::string::npos);

  obs::Registry empty;
  EXPECT_NE(obs::stage_report(empty).find("no trace spans"), std::string::npos);
}

// --- logging ---------------------------------------------------------------

/// Restores the global logger's sink/level on scope exit so tests don't
/// leak configuration into each other.
class ScopedLoggerCapture {
 public:
  explicit ScopedLoggerCapture(obs::LogLevel level) {
    auto& logger = obs::Logger::global();
    previous_level_ = logger.level();
    logger.set_level(level);
    logger.set_sink([this](const obs::LogRecord& record) {
      records_.push_back(record);
    });
  }
  ~ScopedLoggerCapture() {
    auto& logger = obs::Logger::global();
    logger.set_sink(nullptr);
    logger.set_level(previous_level_);
  }

  const std::vector<obs::LogRecord>& records() const { return records_; }

 private:
  std::vector<obs::LogRecord> records_;
  obs::LogLevel previous_level_;
};

TEST(Log, SinkCapturesRecordsWithFields) {
  ScopedLoggerCapture capture(obs::LogLevel::kDebug);
  RIPKI_LOG_INFO("dns", "resolved", obs::LogField("domain", "example.com"),
                 obs::LogField("addresses", 3));
  ASSERT_EQ(capture.records().size(), 1u);
  const auto& record = capture.records()[0];
  EXPECT_EQ(record.level, obs::LogLevel::kInfo);
  EXPECT_EQ(record.component, "dns");
  EXPECT_EQ(record.message, "resolved");
  ASSERT_EQ(record.fields.size(), 2u);
  EXPECT_EQ(record.fields[0].key, "domain");
  EXPECT_EQ(record.fields[0].value, "example.com");
  EXPECT_EQ(record.fields[1].value, "3");
}

TEST(Log, LevelFilteringDropsLowerSeverities) {
  ScopedLoggerCapture capture(obs::LogLevel::kWarn);
  RIPKI_LOG_DEBUG("pipeline", "dropped");
  RIPKI_LOG_INFO("pipeline", "dropped too");
  RIPKI_LOG_WARN("pipeline", "kept");
  RIPKI_LOG_ERROR("pipeline", "kept too");
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].message, "kept");
  EXPECT_EQ(capture.records()[1].level, obs::LogLevel::kError);
}

TEST(Log, FormatQuotesValuesWithSpaces) {
  obs::LogRecord record;
  record.level = obs::LogLevel::kWarn;
  record.component = "rtr";
  record.message = "downgrade";
  record.fields.push_back(obs::LogField("reason", "unsupported version"));
  record.fields.push_back(obs::LogField("from", 2));
  EXPECT_EQ(obs::Logger::format(record),
            "WARN rtr: downgrade reason=\"unsupported version\" from=2");
}

TEST(Log, FieldConstructorsStringify) {
  EXPECT_EQ(obs::LogField("b", true).value, "true");
  EXPECT_EQ(obs::LogField("b", false).value, "false");
  EXPECT_EQ(obs::LogField("d", 1.5).value, "1.5");
  EXPECT_EQ(obs::LogField("u", std::uint64_t{18'000'000'000}).value,
            "18000000000");
}

// --- export ----------------------------------------------------------------

TEST(Export, MetricsJsonRoundTripsValues) {
  obs::Registry registry;
  registry.counter("ripki.dns.queries").set(1234);
  registry.gauge("ripki.bgp.rib_prefixes").set(42);
  const double bounds[] = {10, 20};
  auto& hist = registry.histogram("ripki.trace.stage", bounds);
  hist.observe(5);
  hist.observe(15);

  std::ostringstream os;
  core::export_metrics_json(registry, os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"ripki.dns.queries\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"ripki.bgp.rib_prefixes\":42"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":20"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":10,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"+Inf\",\"count\":0}"), std::string::npos);
  // Braces balance — cheap structural validity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Export, MetricsPrometheusTextFormat) {
  obs::Registry registry;
  registry.counter("ripki.dns.queries").set(9);
  const double bounds[] = {10};
  auto& hist = registry.histogram("ripki.trace.run", bounds);
  hist.observe(5);
  hist.observe(50);

  std::ostringstream os;
  core::export_metrics_prometheus(registry, os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE ripki_dns_queries counter"), std::string::npos);
  EXPECT_NE(text.find("ripki_dns_queries 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ripki_trace_run histogram"), std::string::npos);
  EXPECT_NE(text.find("ripki_trace_run_bucket{le=\"10\"} 1"), std::string::npos);
  // Prometheus buckets are cumulative: +Inf equals the total count.
  EXPECT_NE(text.find("ripki_trace_run_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ripki_trace_run_count 2"), std::string::npos);
}

TEST(Export, PrometheusEscapingPerExpositionSpec) {
  // Label values escape backslash, double-quote, and newline.
  EXPECT_EQ(core::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(core::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(core::prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(core::prometheus_escape_label("two\nlines"), "two\\nlines");
  // HELP text escapes backslash and newline but leaves quotes alone.
  EXPECT_EQ(core::prometheus_escape_help("a\\b"), "a\\\\b");
  EXPECT_EQ(core::prometheus_escape_help("two\nlines"), "two\\nlines");
  EXPECT_EQ(core::prometheus_escape_help("say \"hi\""), "say \"hi\"");
}

TEST(Export, PrometheusHelpLinesAreEmittedEscaped) {
  obs::Registry registry;
  registry.counter("ripki.dns.queries").set(3);
  registry.describe("ripki.dns.queries", "queries with\nnewline and \\slash");

  std::ostringstream os;
  core::export_metrics_prometheus(registry, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP ripki_dns_queries queries with\\nnewline "
                      "and \\\\slash"),
            std::string::npos);
  // The escaped newline must not break the line structure: HELP and TYPE
  // stay adjacent lines.
  EXPECT_NE(text.find("\\\\slash\n# TYPE ripki_dns_queries counter"),
            std::string::npos);
}

// --- legacy counter migration ----------------------------------------------

TEST(Migration, PipelineCountersPublishIntoRegistry) {
  core::PipelineCounters counters;
  counters.domains_total = 100;
  counters.dns_queries = 4321;
  counters.as_set_entries_excluded = 7;

  obs::Registry registry;
  counters.publish(registry);
  EXPECT_EQ(registry.counter("ripki.pipeline.domains_total").value(), 100u);
  EXPECT_EQ(registry.counter("ripki.pipeline.dns_queries").value(), 4321u);
  EXPECT_EQ(registry.counter("ripki.pipeline.as_set_entries_excluded").value(),
            7u);

  // for_each_field enumerates every struct field exactly once.
  std::size_t fields = 0;
  counters.for_each_field([&](const char*, std::uint64_t) { ++fields; });
  EXPECT_EQ(fields, 11u);
}

TEST(Migration, MrtParseStatsPublishIntoRegistry) {
  bgp::mrt::ParseStats stats;
  stats.records = 11;
  stats.rib_entries = 22;
  stats.skipped_attributes = 33;

  obs::Registry registry;
  stats.publish(registry);
  EXPECT_EQ(registry.counter("ripki.bgp.mrt.records").value(), 11u);
  EXPECT_EQ(registry.counter("ripki.bgp.mrt.rib_entries").value(), 22u);
  EXPECT_EQ(registry.counter("ripki.bgp.mrt.skipped_attributes").value(), 33u);
}

}  // namespace
