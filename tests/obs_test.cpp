// Observability subsystem: counter/gauge/histogram semantics, percentile
// math against known distributions, span nesting and timing monotonicity,
// logger sink capture and level filtering, and JSON/Prometheus export.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "bgp/mrt.hpp"
#include "core/dataset.hpp"
#include "core/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ripki;

// --- metrics ---------------------------------------------------------------

TEST(Metrics, CounterIncrementAndSet) {
  obs::Registry registry;
  auto& counter = registry.counter("ripki.test.events");
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.set(7);
  EXPECT_EQ(counter.value(), 7u);
  // Same name resolves to the same metric.
  EXPECT_EQ(&registry.counter("ripki.test.events"), &counter);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::Registry registry;
  auto& gauge = registry.gauge("ripki.test.depth");
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(Metrics, CounterIsThreadSafe) {
  obs::Registry registry;
  auto& counter = registry.counter("ripki.test.parallel");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, HistogramBucketsAndAggregates) {
  obs::Registry registry;
  const double bounds[] = {10, 20, 30};
  auto& hist = registry.histogram("ripki.test.hist", bounds);
  hist.observe(5);    // bucket 0
  hist.observe(10);   // bucket 0 (bounds are inclusive upper edges)
  hist.observe(15);   // bucket 1
  hist.observe(100);  // overflow
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 130.0);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);
  const auto counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Metrics, HistogramPercentilesOnUniformDistribution) {
  obs::Registry registry;
  const double bounds[] = {25, 50, 75, 100};
  auto& hist = registry.histogram("ripki.test.uniform", bounds);
  // 1..100 uniform: 25 observations per bucket. With linear interpolation
  // inside the bucket, the percentiles land exactly on the value.
  for (int v = 1; v <= 100; ++v) hist.observe(v);
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.90), 90.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(hist.percentile(1.00), 100.0);
  // p99 target rank 99 falls inside the last finite bucket: 75 + 24/25*25.
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), 99.0);
}

TEST(Metrics, HistogramPercentileSkewedAndOverflow) {
  obs::Registry registry;
  const double bounds[] = {1, 2};
  auto& hist = registry.histogram("ripki.test.skew", bounds);
  for (int i = 0; i < 99; ++i) hist.observe(0.5);
  hist.observe(1000);  // one outlier in the overflow bucket
  // Median sits inside the first bucket: target rank 50 of the 99
  // first-bucket observations, interpolated across (0, 1].
  EXPECT_NEAR(hist.percentile(0.50), 50.0 / 99.0, 1e-9);
  // Ranks landing in the overflow bucket report the observed max.
  EXPECT_DOUBLE_EQ(hist.percentile(0.999), 1000.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 0.0);  // empty target rank clamps
}

TEST(Metrics, EmptyHistogramPercentileIsZero) {
  obs::Registry registry;
  auto& hist = registry.histogram("ripki.test.empty");
  EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.percentile(1.0), 0.0);
  EXPECT_EQ(hist.count(), 0u);
}

TEST(Metrics, SingleSampleHistogramPercentiles) {
  obs::Registry registry;
  const double bounds[] = {10, 100};
  auto& hist = registry.histogram("ripki.test.single", bounds);
  hist.observe(42);
  // Every rank lands in the one occupied bucket (10, 100]: low ranks
  // interpolate from the bucket's lower edge, and the max cap keeps every
  // rank from exceeding the lone observation.
  EXPECT_DOUBLE_EQ(hist.percentile(0.01), 10.9);  // 10 + 0.01 * 90
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), 42.0);  // 55 capped at max
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(hist.percentile(1.00), 42.0);
}

TEST(Metrics, AllSamplesInOverflowBucketReportMax) {
  obs::Registry registry;
  const double bounds[] = {1, 2};
  auto& hist = registry.histogram("ripki.test.overflow", bounds);
  hist.observe(50);
  hist.observe(70);
  hist.observe(90);
  // Every rank resolves to the overflow bucket, which reports the
  // observed max rather than an interpolation over an unbounded range.
  EXPECT_DOUBLE_EQ(hist.percentile(0.01), 90.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), 90.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), 90.0);
  const auto counts = hist.bucket_counts();
  EXPECT_EQ(counts.back(), 3u);
}

TEST(Metrics, PercentileFromBucketsMatchesHistogram) {
  obs::Registry registry;
  const double bounds[] = {25, 50, 75, 100};
  auto& hist = registry.histogram("ripki.test.shared", bounds);
  for (int v = 1; v <= 100; ++v) hist.observe(v);
  const auto counts = hist.bucket_counts();
  for (const double p : {0.25, 0.50, 0.90, 0.99}) {
    EXPECT_DOUBLE_EQ(
        obs::percentile_from_buckets(bounds, counts, hist.max(), p),
        hist.percentile(p));
  }
}

TEST(Metrics, CollectIsSortedAndComplete) {
  obs::Registry registry;
  registry.counter("ripki.b.counter").inc(3);
  registry.gauge("ripki.a.gauge").set(-5);
  registry.histogram("ripki.c.hist").observe(12.0);
  const auto metrics = registry.collect();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].name, "ripki.a.gauge");
  EXPECT_EQ(metrics[1].name, "ripki.b.counter");
  EXPECT_EQ(metrics[2].name, "ripki.c.hist");
  EXPECT_EQ(metrics[0].gauge_value, -5);
  EXPECT_EQ(metrics[1].counter_value, 3u);
  EXPECT_EQ(metrics[2].count, 1u);
}

// --- spans -----------------------------------------------------------------

TEST(Span, RecordsDurationHistogram) {
  obs::Registry registry;
  {
    obs::Span span(&registry, "outer");
    EXPECT_TRUE(span.active());
    EXPECT_EQ(span.path(), "outer");
  }
  const auto metrics = registry.collect();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].name, "ripki.trace.outer");
  EXPECT_EQ(metrics[0].count, 1u);
}

TEST(Span, NestingBuildsDottedPathsAndParentCoversChild) {
  obs::Registry registry;
  {
    obs::Span outer(&registry, "outer");
    {
      obs::Span inner(&registry, "inner");
      EXPECT_EQ(inner.path(), "outer.inner");
      EXPECT_EQ(obs::Span::current(), &inner);
    }
    EXPECT_EQ(obs::Span::current(), &outer);
  }
  EXPECT_EQ(obs::Span::current(), nullptr);

  double outer_sum = 0, inner_sum = 0;
  for (const auto& m : registry.collect()) {
    if (m.name == "ripki.trace.outer") outer_sum = m.sum;
    if (m.name == "ripki.trace.outer.inner") inner_sum = m.sum;
  }
  EXPECT_GT(inner_sum, 0.0);
  // The parent's clock ran the whole time the child's did: monotonicity.
  EXPECT_GE(outer_sum, inner_sum);
}

TEST(Span, StopIsIdempotentAndEndsNesting) {
  obs::Registry registry;
  obs::Span span(&registry, "once");
  span.stop();
  span.stop();
  EXPECT_EQ(obs::Span::current(), nullptr);
  double count = 0;
  for (const auto& m : registry.collect()) {
    if (m.name == "ripki.trace.once") count = static_cast<double>(m.count);
  }
  EXPECT_EQ(count, 1.0);
}

TEST(Span, NullRegistryIsInert) {
  obs::Span span(nullptr, "ignored");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.path(), "");
  EXPECT_EQ(span.elapsed_ns(), 0u);
  EXPECT_EQ(obs::Span::current(), nullptr);
  span.stop();  // no-op, no crash
  obs::record_duration_ns(nullptr, "ignored", 123);
}

TEST(Span, RecordDurationNsUsesCurrentPath) {
  obs::Registry registry;
  {
    obs::Span outer(&registry, "parse");
    obs::record_duration_ns(&registry, "insert", 2'000);  // 2µs
  }
  bool found = false;
  for (const auto& m : registry.collect()) {
    if (m.name == "ripki.trace.parse.insert") {
      found = true;
      EXPECT_DOUBLE_EQ(m.sum, 2.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Span, StageReportListsEverySpan) {
  obs::Registry registry;
  {
    obs::Span a(&registry, "alpha");
    obs::Span b(&registry, "beta");
  }
  const std::string report = obs::stage_report(registry);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("alpha.beta"), std::string::npos);
  EXPECT_NE(report.find("calls"), std::string::npos);

  obs::Registry empty;
  EXPECT_NE(obs::stage_report(empty).find("no trace spans"), std::string::npos);
}

// --- logging ---------------------------------------------------------------

/// Restores the global logger's sink/level on scope exit so tests don't
/// leak configuration into each other.
class ScopedLoggerCapture {
 public:
  explicit ScopedLoggerCapture(obs::LogLevel level) {
    auto& logger = obs::Logger::global();
    previous_level_ = logger.level();
    logger.set_level(level);
    logger.set_sink([this](const obs::LogRecord& record) {
      records_.push_back(record);
    });
  }
  ~ScopedLoggerCapture() {
    auto& logger = obs::Logger::global();
    logger.set_sink(nullptr);
    logger.set_level(previous_level_);
  }

  const std::vector<obs::LogRecord>& records() const { return records_; }

 private:
  std::vector<obs::LogRecord> records_;
  obs::LogLevel previous_level_;
};

TEST(Log, SinkCapturesRecordsWithFields) {
  ScopedLoggerCapture capture(obs::LogLevel::kDebug);
  RIPKI_LOG_INFO("dns", "resolved", obs::LogField("domain", "example.com"),
                 obs::LogField("addresses", 3));
  ASSERT_EQ(capture.records().size(), 1u);
  const auto& record = capture.records()[0];
  EXPECT_EQ(record.level, obs::LogLevel::kInfo);
  EXPECT_EQ(record.component, "dns");
  EXPECT_EQ(record.message, "resolved");
  ASSERT_EQ(record.fields.size(), 2u);
  EXPECT_EQ(record.fields[0].key, "domain");
  EXPECT_EQ(record.fields[0].value, "example.com");
  EXPECT_EQ(record.fields[1].value, "3");
}

TEST(Log, LevelFilteringDropsLowerSeverities) {
  ScopedLoggerCapture capture(obs::LogLevel::kWarn);
  RIPKI_LOG_DEBUG("pipeline", "dropped");
  RIPKI_LOG_INFO("pipeline", "dropped too");
  RIPKI_LOG_WARN("pipeline", "kept");
  RIPKI_LOG_ERROR("pipeline", "kept too");
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].message, "kept");
  EXPECT_EQ(capture.records()[1].level, obs::LogLevel::kError);
}

TEST(Log, FormatQuotesValuesWithSpaces) {
  obs::LogRecord record;
  record.level = obs::LogLevel::kWarn;
  record.component = "rtr";
  record.message = "downgrade";
  record.fields.push_back(obs::LogField("reason", "unsupported version"));
  record.fields.push_back(obs::LogField("from", 2));
  EXPECT_EQ(obs::Logger::format(record),
            "WARN rtr: downgrade reason=\"unsupported version\" from=2");
}

TEST(Log, FieldConstructorsStringify) {
  EXPECT_EQ(obs::LogField("b", true).value, "true");
  EXPECT_EQ(obs::LogField("b", false).value, "false");
  EXPECT_EQ(obs::LogField("d", 1.5).value, "1.5");
  EXPECT_EQ(obs::LogField("u", std::uint64_t{18'000'000'000}).value,
            "18000000000");
}

// --- export ----------------------------------------------------------------

TEST(Export, MetricsJsonRoundTripsValues) {
  obs::Registry registry;
  registry.counter("ripki.dns.queries").set(1234);
  registry.gauge("ripki.bgp.rib_prefixes").set(42);
  const double bounds[] = {10, 20};
  auto& hist = registry.histogram("ripki.trace.stage", bounds);
  hist.observe(5);
  hist.observe(15);

  std::ostringstream os;
  core::export_metrics_json(registry, os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"ripki.dns.queries\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"ripki.bgp.rib_prefixes\":42"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":20"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":10,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"+Inf\",\"count\":0}"), std::string::npos);
  // Braces balance — cheap structural validity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Export, MetricsPrometheusTextFormat) {
  obs::Registry registry;
  registry.counter("ripki.dns.queries").set(9);
  const double bounds[] = {10};
  auto& hist = registry.histogram("ripki.trace.run", bounds);
  hist.observe(5);
  hist.observe(50);

  std::ostringstream os;
  core::export_metrics_prometheus(registry, os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE ripki_dns_queries counter"), std::string::npos);
  EXPECT_NE(text.find("ripki_dns_queries 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ripki_trace_run histogram"), std::string::npos);
  EXPECT_NE(text.find("ripki_trace_run_bucket{le=\"10\"} 1"), std::string::npos);
  // Prometheus buckets are cumulative: +Inf equals the total count.
  EXPECT_NE(text.find("ripki_trace_run_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ripki_trace_run_count 2"), std::string::npos);
}

TEST(Export, PrometheusEscapingPerExpositionSpec) {
  // Label values escape backslash, double-quote, and newline.
  EXPECT_EQ(core::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(core::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(core::prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(core::prometheus_escape_label("two\nlines"), "two\\nlines");
  // HELP text escapes backslash and newline but leaves quotes alone.
  EXPECT_EQ(core::prometheus_escape_help("a\\b"), "a\\\\b");
  EXPECT_EQ(core::prometheus_escape_help("two\nlines"), "two\\nlines");
  EXPECT_EQ(core::prometheus_escape_help("say \"hi\""), "say \"hi\"");
}

TEST(Export, PrometheusHelpLinesAreEmittedEscaped) {
  obs::Registry registry;
  registry.counter("ripki.dns.queries").set(3);
  registry.describe("ripki.dns.queries", "queries with\nnewline and \\slash");

  std::ostringstream os;
  core::export_metrics_prometheus(registry, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP ripki_dns_queries queries with\\nnewline "
                      "and \\\\slash"),
            std::string::npos);
  // The escaped newline must not break the line structure: HELP and TYPE
  // stay adjacent lines.
  EXPECT_NE(text.find("\\\\slash\n# TYPE ripki_dns_queries counter"),
            std::string::npos);
}

// --- legacy counter migration ----------------------------------------------

TEST(Migration, PipelineCountersPublishIntoRegistry) {
  core::PipelineCounters counters;
  counters.domains_total = 100;
  counters.dns_queries = 4321;
  counters.as_set_entries_excluded = 7;

  obs::Registry registry;
  counters.publish(registry);
  EXPECT_EQ(registry.counter("ripki.pipeline.domains_total").value(), 100u);
  EXPECT_EQ(registry.counter("ripki.pipeline.dns_queries").value(), 4321u);
  EXPECT_EQ(registry.counter("ripki.pipeline.as_set_entries_excluded").value(),
            7u);

  // for_each_field enumerates every struct field exactly once.
  std::size_t fields = 0;
  counters.for_each_field([&](const char*, std::uint64_t) { ++fields; });
  EXPECT_EQ(fields, 11u);
}

TEST(Migration, MrtParseStatsPublishIntoRegistry) {
  bgp::mrt::ParseStats stats;
  stats.records = 11;
  stats.rib_entries = 22;
  stats.skipped_attributes = 33;

  obs::Registry registry;
  stats.publish(registry);
  EXPECT_EQ(registry.counter("ripki.bgp.mrt.records").value(), 11u);
  EXPECT_EQ(registry.counter("ripki.bgp.mrt.rib_entries").value(), 22u);
  EXPECT_EQ(registry.counter("ripki.bgp.mrt.skipped_attributes").value(), 33u);
}

// --- request-scoped context --------------------------------------------------

TEST(RequestContext, FormatAndParseIdRoundTrip) {
  EXPECT_EQ(obs::RequestContext::format_id(0), "0000000000000000");
  EXPECT_EQ(obs::RequestContext::format_id(0x1234abcd), "000000001234abcd");
  EXPECT_EQ(obs::RequestContext::format_id(~0ull), "ffffffffffffffff");
  for (std::uint64_t id : {0ull, 1ull, 0xdeadbeefull, ~0ull}) {
    EXPECT_EQ(obs::RequestContext::parse_id(obs::RequestContext::format_id(id)),
              id);
  }
  // Short and uppercase spellings parse too (proxies may re-case headers).
  EXPECT_EQ(obs::RequestContext::parse_id("ff"), 0xffu);
  EXPECT_EQ(obs::RequestContext::parse_id("DeadBeef"), 0xdeadbeefu);
}

TEST(RequestContext, ParseIdRejectsMalformedInput) {
  EXPECT_EQ(obs::RequestContext::parse_id(""), 0u);
  EXPECT_EQ(obs::RequestContext::parse_id("xyz"), 0u);
  EXPECT_EQ(obs::RequestContext::parse_id("12 34"), 0u);
  EXPECT_EQ(obs::RequestContext::parse_id("0x12"), 0u);
  // 17 digits overflows a u64 id: rejected, not truncated.
  EXPECT_EQ(obs::RequestContext::parse_id("11111111111111111"), 0u);
}

TEST(RequestContext, RecordSpanCapsAtMaxSpansAndCountsDrops) {
  const auto start = std::chrono::steady_clock::now();
  obs::RequestContext context(7, start);
  EXPECT_EQ(context.id(), 7u);
  EXPECT_EQ(context.id_hex(), "0000000000000007");

  const std::size_t kMax = obs::RequestContext::kMaxSpans;
  for (std::size_t i = 0; i < kMax + 5; ++i) {
    context.record_span("serve.handle.step", start + std::chrono::microseconds(i),
                        /*duration_ns=*/2'500);
  }
  EXPECT_EQ(context.spans().size(), kMax);
  EXPECT_EQ(context.spans_dropped(), 5u);
  EXPECT_EQ(context.spans().front().path, "serve.handle.step");
  EXPECT_EQ(context.spans().front().duration_us, 2u);  // 2500 ns -> 2 µs

  // Spans that opened before the request (executor clock skew) clamp their
  // offset to zero instead of going negative.
  obs::RequestContext late(8, start + std::chrono::seconds(1));
  late.record_span("early", start, 1'000);
  EXPECT_EQ(late.spans().front().start_us, 0u);

  // take_spans moves the list out for the slow-request ring.
  auto moved = context.take_spans();
  EXPECT_EQ(moved.size(), kMax);
}

TEST(RequestContext, ScopesInstallNestAndRestore) {
  EXPECT_EQ(obs::RequestContext::current(), nullptr);
  const auto now = std::chrono::steady_clock::now();
  obs::RequestContext outer(1, now);
  obs::RequestContext inner(2, now);
  {
    obs::RequestScope outer_scope(&outer);
    EXPECT_EQ(obs::RequestContext::current(), &outer);
    {
      obs::RequestScope inner_scope(&inner);
      EXPECT_EQ(obs::RequestContext::current(), &inner);
      // A null scope is inert: it neither installs nor disturbs.
      obs::RequestScope null_scope(nullptr);
      EXPECT_EQ(obs::RequestContext::current(), &inner);
    }
    EXPECT_EQ(obs::RequestContext::current(), &outer);
  }
  EXPECT_EQ(obs::RequestContext::current(), nullptr);
}

TEST(RequestContext, SpanStopAppendsToCurrentContext) {
  obs::Registry registry;
  obs::RequestContext context(42, std::chrono::steady_clock::now());
  {
    obs::RequestScope scope(&context);
    obs::Span handle(&registry, "serve.handle");
    { obs::Span child(&registry, "domain"); }
  }
  ASSERT_EQ(context.spans().size(), 2u);
  // Children close first; paths are the full dotted span paths.
  EXPECT_EQ(context.spans()[0].path, "serve.handle.domain");
  EXPECT_EQ(context.spans()[1].path, "serve.handle");
  // Outside a scope the same spans cost nothing and record nowhere.
  { obs::Span orphan(&registry, "serve.handle"); }
  EXPECT_EQ(context.spans().size(), 2u);
}

TEST(RequestContext, LoggerStampsRequestIdWhileScopeIsLive) {
  obs::Logger logger;
  std::vector<obs::LogRecord> records;
  logger.set_sink([&records](const obs::LogRecord& r) { records.push_back(r); });

  obs::RequestContext context(0xabcd, std::chrono::steady_clock::now());
  {
    obs::RequestScope scope(&context);
    logger.log(obs::LogLevel::kInfo, "serve", "inside");
  }
  logger.log(obs::LogLevel::kInfo, "serve", "outside");
  logger.set_sink(nullptr);

  ASSERT_EQ(records.size(), 2u);
  ASSERT_EQ(records[0].fields.size(), 1u);
  EXPECT_EQ(records[0].fields[0].key, "request_id");
  EXPECT_EQ(records[0].fields[0].value, "000000000000abcd");
  EXPECT_TRUE(records[1].fields.empty());
}

// --- metric time series ------------------------------------------------------

TEST(TimeSeries, RecordsPerIntervalDeltasAndEvictsOldest) {
  obs::Registry registry;
  auto& requests = registry.counter("ripki.test.requests");
  auto& depth = registry.gauge("ripki.test.depth");

  obs::TimeSeriesRing ring(2);
  requests.set(10);
  depth.set(5);
  ring.record(registry.collect(), 1.0);  // first tick: absolute values
  requests.inc(30);
  depth.set(3);
  ring.record(registry.collect(), 2.0);
  requests.inc(5);
  ring.record(registry.collect(), 1.0);  // evicts tick 1

  EXPECT_EQ(ring.ticks(), 3u);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.capacity(), 2u);

  const auto history = ring.history();
  ASSERT_EQ(history.size(), 2u);
  // Sequence numbers keep counting across eviction.
  EXPECT_EQ(history[0].seq, 2u);
  EXPECT_EQ(history[1].seq, 3u);
  EXPECT_DOUBLE_EQ(history[0].seconds, 2.0);

  auto find = [](const std::vector<obs::MetricSnapshot>& deltas,
                 std::string_view name) -> const obs::MetricSnapshot* {
    for (const auto& snapshot : deltas) {
      if (snapshot.name == name) return &snapshot;
    }
    return nullptr;
  };
  // Counters are per-interval increments; gauges stay point-in-time.
  const auto* tick2 = find(history[0].deltas, "ripki.test.requests");
  ASSERT_NE(tick2, nullptr);
  EXPECT_EQ(tick2->counter_value, 30u);
  const auto* tick3 = find(history[1].deltas, "ripki.test.requests");
  ASSERT_NE(tick3, nullptr);
  EXPECT_EQ(tick3->counter_value, 5u);
  const auto* gauge2 = find(history[0].deltas, "ripki.test.depth");
  ASSERT_NE(gauge2, nullptr);
  EXPECT_EQ(gauge2->gauge_value, 3);
}

TEST(TimeSeries, RenderJsonEmitsOneSeriesPerMetric) {
  obs::Registry registry;
  registry.counter("ripki.test.hits").set(4);
  registry.histogram("ripki.test.latency").observe(100.0);

  obs::TimeSeriesRing ring(8);
  ring.record(registry.collect(), 2.0);
  registry.counter("ripki.test.hits").inc(6);
  ring.record(registry.collect(), 2.0);

  const std::string json = ring.render_json();
  EXPECT_EQ(json.find("{\"varz\":"), 0u) << json;
  EXPECT_NE(json.find("\"ticks\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ripki.test.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  // Counter deltas [4, 6] at 2 s intervals -> per-second rates [2, 3].
  EXPECT_NE(json.find("\"deltas\":[4,6]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"per_sec\":[2,3]"), std::string::npos) << json;
}

TEST(TimeSeries, MetricsRegisteredMidStreamPadWithZeros) {
  obs::Registry registry;
  registry.counter("ripki.test.first").set(1);
  obs::TimeSeriesRing ring(8);
  ring.record(registry.collect(), 1.0);
  registry.counter("ripki.test.second").set(9);
  ring.record(registry.collect(), 1.0);

  const std::string json = ring.render_json();
  // The late metric still has one entry per interval: a zero pad, then
  // its first absolute value.
  EXPECT_NE(json.find("\"ripki.test.second\""), std::string::npos);
  EXPECT_NE(json.find("\"deltas\":[0,9]"), std::string::npos) << json;
}

// --- delta snapshots under tracer wrap and gauge movement --------------------

TEST(Delta, NegativeGaugeDeltasKeepPointInTimeValue) {
  obs::Registry registry;
  auto& gauge = registry.gauge("ripki.test.inflight");
  gauge.set(10);
  const auto before = registry.collect();
  gauge.set(-5);  // drains below zero: deltas must not underflow
  const auto after = registry.collect();

  const auto deltas = obs::delta_snapshots(before, after);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind, obs::MetricSnapshot::Kind::kGauge);
  EXPECT_EQ(deltas[0].gauge_value, -5);
}

TEST(Delta, CounterDeltasStayExactWhileTracerRingWraps) {
  // A small tracer ring wraps many times over while spans keep feeding
  // the same registry; the histogram/counter deltas must stay exact and
  // the trace export must still hold only balanced begin/end pairs.
  obs::Registry registry;
  obs::EventTracer tracer(/*capacity=*/8, /*sample_every=*/1);
  registry.set_tracer(&tracer);

  const auto before = registry.collect();
  constexpr int kSpans = 50;
  for (int i = 0; i < kSpans; ++i) {
    obs::Span span(&registry, "wrap.work");
  }
  registry.set_tracer(nullptr);
  const auto after = registry.collect();

  EXPECT_GT(tracer.dropped(), 0u) << "ring must have wrapped";

  const auto deltas = obs::delta_snapshots(before, after);
  const obs::MetricSnapshot* latency = nullptr;
  for (const auto& snapshot : deltas) {
    if (snapshot.name == "ripki.trace.wrap.work") latency = &snapshot;
  }
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, static_cast<std::uint64_t>(kSpans));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t count : latency->bucket_counts) bucket_total += count;
  EXPECT_EQ(bucket_total, static_cast<std::uint64_t>(kSpans));

  // Wrap tears pairs apart; balance_events must drop every orphan.
  const auto balanced = obs::balance_events(tracer.snapshot());
  EXPECT_EQ(balanced.size() % 2, 0u);
  std::map<std::uint32_t, int> open;
  for (const auto& event : balanced) {
    if (event.phase == obs::TraceEvent::Phase::kBegin) {
      ++open[event.tid];
    } else {
      ASSERT_GT(open[event.tid], 0) << "end without a live begin survived";
      --open[event.tid];
    }
  }
  for (const auto& [tid, depth] : open) EXPECT_EQ(depth, 0) << "tid " << tid;
}

}  // namespace
