// Cross-module edge cases and determinism properties that don't belong to
// a single module's suite.
#include <gtest/gtest.h>

#include "bgp/update.hpp"
#include "core/pipeline.hpp"
#include "crypto/uint256.hpp"
#include "rpki/rrdp.hpp"
#include "rpki/validator.hpp"
#include "util/prng.hpp"

namespace ripki {
namespace {

net::Prefix P(const std::string& text) { return net::Prefix::parse(text).value(); }

// --- pipeline determinism -------------------------------------------------------

TEST(Determinism, PipelineRunsAreBitIdentical) {
  web::EcosystemConfig config;
  config.domain_count = 2'000;
  config.isp_count = 200;
  config.hoster_count = 60;
  config.enterprise_count = 200;
  config.transit_count = 30;
  const auto eco = web::Ecosystem::generate(config);

  core::MeasurementPipeline p1(*eco, core::PipelineConfig{});
  core::MeasurementPipeline p2(*eco, core::PipelineConfig{});
  const auto d1 = p1.run();
  const auto d2 = p2.run();

  ASSERT_EQ(d1.domains.size(), d2.domains.size());
  for (std::size_t i = 0; i < d1.domains.size(); ++i) {
    EXPECT_EQ(d1.domains[i], d2.domains[i]);
  }
  EXPECT_EQ(d1.counters.dns_queries, d2.counters.dns_queries);
}

// --- RRDP convergence property -----------------------------------------------------

TEST(RrdpProperty, ClientConvergesUnderChurn) {
  util::Prng prng(314);
  auto anchor = rpki::make_trust_anchor(
      "ARIN", rpki::ResourceSet({P("23.0.0.0/8")}),
      rpki::ValidityWindow{rpki::kDefaultNow - 10 * rpki::kSecondsPerDay,
                           rpki::kDefaultNow + 100 * rpki::kSecondsPerDay},
      prng);

  const auto build = [&](int roas) {
    rpki::RepositoryBuilder builder(anchor, rpki::kDefaultNow, prng);
    const auto ca = builder.add_ca("Org", rpki::ResourceSet({P("23.1.0.0/16")}));
    for (int i = 0; i < roas; ++i) {
      rpki::RoaContent content;
      content.asn = net::Asn(64500u + static_cast<std::uint32_t>(i));
      content.prefixes = {
          rpki::RoaPrefix{P("23.1.0.0/16"), static_cast<std::uint8_t>(17 + i % 8)}};
      builder.add_roa(ca, content);
    }
    return builder.build();
  };

  rpki::RrdpServer server("churn", build(1), /*delta_window=*/3);
  rpki::RrdpClient client;
  const rpki::RepositoryValidator validator(rpki::kDefaultNow);

  for (int round = 0; round < 12; ++round) {
    const int roas = 1 + static_cast<int>(prng.uniform(6));
    const auto repo = build(roas);
    server.update(repo);
    // Sometimes skip a sync so the client falls behind by several serials.
    if (prng.bernoulli(0.4)) continue;
    ASSERT_TRUE(client.sync(server).ok()) << "round " << round;

    // Property: the mirrored repository validates to exactly the same VRP
    // set as the server's current repository.
    auto assembled = client.assemble();
    ASSERT_TRUE(assembled.ok());
    rpki::ValidationReport direct;
    validator.validate_into(repo, direct);
    rpki::ValidationReport mirrored;
    validator.validate_into(assembled.value(), mirrored);
    EXPECT_EQ(mirrored.vrps, direct.vrps) << "round " << round;
  }
}

// --- BGP UPDATE extended-length attributes --------------------------------------------

TEST(UpdateCodec, ExtendedLengthAsPathRoundTrips) {
  bgp::UpdateMessage update;
  // 80 ASNs -> AS_PATH attribute value of 2 + 320 bytes > 255: forces the
  // extended-length attribute encoding.
  std::vector<net::Asn> asns;
  for (std::uint32_t i = 0; i < 80; ++i) asns.emplace_back(64000 + i);
  update.as_path = bgp::AsPath::sequence(asns);
  update.next_hop = net::IpAddress::v4(192, 0, 2, 1);
  update.nlri = {P("10.0.0.0/8")};

  auto encoded = bgp::encode_update(update);
  ASSERT_TRUE(encoded.ok());
  util::ByteReader reader(encoded.value());
  auto decoded = bgp::decode_update(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().as_path, update.as_path);
}

TEST(UpdateCodec, RejectsOversizedMessage) {
  bgp::UpdateMessage update;
  update.as_path = bgp::AsPath::sequence({1, 2});
  update.next_hop = net::IpAddress::v4(192, 0, 2, 1);
  for (std::uint32_t i = 0; i < 1'500; ++i) {
    update.nlri.push_back(
        net::Prefix(net::IpAddress::v4(0x0A000000u + (i << 8)), 24));
  }
  EXPECT_FALSE(bgp::encode_update(update).ok());  // > 4096 bytes
}

// --- crypto edge cases ------------------------------------------------------------------

TEST(U256Edge, ModexpDegenerateInputs) {
  using crypto::U256;
  EXPECT_EQ(U256::modexp(U256(0), U256(5), U256(7)), U256(0));
  EXPECT_EQ(U256::modexp(U256(5), U256(0), U256(7)), U256(1));
  EXPECT_EQ(U256::modexp(U256(5), U256(5), U256(1)), U256(0));  // mod 1
  EXPECT_EQ(U256::modexp(U256(0), U256(0), U256(7)), U256(1));  // 0^0 := 1
}

TEST(U256Edge, WrappingSubAddInverse) {
  using crypto::U256;
  util::Prng prng(271);
  for (int i = 0; i < 200; ++i) {
    const U256 a = U256::random_bits(prng, 1 + static_cast<int>(prng.uniform(255)));
    const U256 b = U256::random_bits(prng, 1 + static_cast<int>(prng.uniform(255)));
    EXPECT_EQ(a.sub(b).add(b), a);  // holds even when a < b (mod 2^256)
  }
}

TEST(U256Edge, DivisionByLargerYieldsZero) {
  using crypto::U256;
  U256 rem;
  EXPECT_EQ(U256::divmod(U256(5), U256(100), &rem), U256(0));
  EXPECT_EQ(rem, U256(5));
}

// --- prefix ordering is a strict total order ----------------------------------------------

TEST(PrefixOrder, StrictWeakOrdering) {
  util::Prng prng(99);
  std::vector<net::Prefix> prefixes;
  for (int i = 0; i < 200; ++i) {
    prefixes.emplace_back(
        net::IpAddress::v4(static_cast<std::uint32_t>(prng.next_u64())),
        static_cast<int>(prng.uniform(33)));
  }
  std::sort(prefixes.begin(), prefixes.end());
  for (std::size_t i = 1; i < prefixes.size(); ++i) {
    EXPECT_LE(prefixes[i - 1], prefixes[i]);
    EXPECT_FALSE(prefixes[i] < prefixes[i - 1]);
  }
}

// --- web: IPv6 answers flow through the pipeline -------------------------------------------

TEST(Ipv6Pipeline, AaaaPairsAppear) {
  web::EcosystemConfig config;
  config.domain_count = 3'000;
  config.isp_count = 200;
  config.hoster_count = 60;
  config.enterprise_count = 200;
  config.transit_count = 30;
  config.ipv6_fraction = 1.0;  // every domain tries AAAA
  const auto eco = web::Ecosystem::generate(config);
  core::MeasurementPipeline pipeline(*eco, core::PipelineConfig{});
  const auto dataset = pipeline.run();

  std::size_t v6_pairs = 0;
  for (const auto record : dataset.rows()) {
    for (const auto& pair : record.www.pairs) {
      if (!pair.prefix.is_v4()) ++v6_pairs;
    }
  }
  // ~30% of ASes hold v6 space, so a solid share of domains must expose
  // v6 prefix-AS pairs.
  EXPECT_GT(v6_pairs, dataset.domains.size() / 10);
}

}  // namespace
}  // namespace ripki
