// The serving layer end to end: the HTTP/1.1 wire core (parser +
// serializer), the event-loop server over real sockets (keep-alive,
// pipelining), the response cache and token-bucket limiter as pure
// logic, and the query service against a real pipeline run — including
// byte-matching lookup answers against values computed directly from the
// core::Dataset, and snapshot swaps racing in-flight reads.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "core/pipeline.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "serve/access_log.hpp"
#include "serve/cache.hpp"
#include "serve/http.hpp"
#include "serve/ratelimit.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "web/ecosystem.hpp"

namespace ripki::serve {
namespace {

using namespace std::chrono_literals;

/// Cache values are shared references now; "" stands in for a miss.
std::string deref(const std::shared_ptr<const std::string>& value) {
  return value ? *value : std::string();
}

// --- wire core: request parser ----------------------------------------------

TEST(HttpParser, ParsesSimpleGet) {
  RequestParser parser;
  ASSERT_TRUE(parser.feed("GET /v1/summary?pretty=1 HTTP/1.1\r\n"
                          "Host: localhost\r\n\r\n"));
  auto request = parser.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->target, "/v1/summary?pretty=1");
  EXPECT_EQ(request->path, "/v1/summary");
  EXPECT_EQ(request->query, "pretty=1");
  EXPECT_TRUE(request->keep_alive);  // 1.1 default
  EXPECT_FALSE(parser.next().has_value());
}

TEST(HttpParser, IncrementalBytesAssembleOneRequest) {
  RequestParser parser;
  const std::string raw = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  for (char c : raw) {
    ASSERT_TRUE(parser.feed(std::string_view(&c, 1)));
  }
  ASSERT_TRUE(parser.next().has_value());
}

TEST(HttpParser, PipelinedRequestsPopInOrder) {
  RequestParser parser;
  ASSERT_TRUE(parser.feed("GET /first HTTP/1.1\r\n\r\n"
                          "GET /second HTTP/1.1\r\n\r\n"
                          "GET /third HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(parser.next()->path, "/first");
  EXPECT_EQ(parser.next()->path, "/second");
  EXPECT_EQ(parser.next()->path, "/third");
  EXPECT_FALSE(parser.next().has_value());
}

TEST(HttpParser, KeepAliveDefaultsFollowVersion) {
  RequestParser parser;
  ASSERT_TRUE(parser.feed("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_FALSE(parser.next()->keep_alive);

  ASSERT_TRUE(parser.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
  EXPECT_TRUE(parser.next()->keep_alive);

  ASSERT_TRUE(parser.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  EXPECT_FALSE(parser.next()->keep_alive);
}

TEST(HttpParser, ContentLengthBodyIsConsumedNotDesynced) {
  RequestParser parser;
  ASSERT_TRUE(parser.feed("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\n"
                          "hello"
                          "GET /after HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(parser.next()->method, "POST");
  auto after = parser.next();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->path, "/after");
}

TEST(HttpParser, RejectsChunkedAndBadVersions) {
  RequestParser chunked;
  EXPECT_FALSE(chunked.feed(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"));
  EXPECT_TRUE(chunked.failed());

  RequestParser version;
  EXPECT_FALSE(version.feed("GET / HTTP/2.0\r\n\r\n"));

  RequestParser garbage;
  EXPECT_FALSE(garbage.feed("not an http request\r\n\r\n"));
}

TEST(HttpParser, OversizedHeadFails) {
  RequestParser parser(RequestParser::Limits{.max_head_bytes = 64,
                                             .max_body_bytes = 64});
  std::string head = "GET / HTTP/1.1\r\nX-Pad: ";
  head.append(200, 'a');
  EXPECT_FALSE(parser.feed(head));
  EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, SerializeResponseCarriesLengthAndConnection) {
  const std::string keep =
      serialize_response(HttpResponse{200, "application/json", "{}", {}}, true);
  EXPECT_NE(keep.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Connection: keep-alive\r\n"), std::string::npos);

  const std::string close = serialize_response(
      HttpResponse{429, "text/plain", "no", {{"Retry-After", "1"}}}, false);
  EXPECT_NE(close.find("429 Too Many Requests"), std::string::npos);
  EXPECT_NE(close.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);
}

// --- response cache (pure logic, injected clock) ----------------------------

ResponseCache::Clock::time_point t0() { return ResponseCache::Clock::time_point{}; }

TEST(ResponseCache, HitThenTtlExpiry) {
  ResponseCache cache({.capacity = 8, .shards = 1, .ttl = 100ms});
  cache.put("/a", "alpha", t0());
  EXPECT_EQ(deref(cache.get("/a", t0() + 99ms)), "alpha");
  EXPECT_EQ(cache.get("/a", t0() + 101ms), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.expired(), 1u);
  EXPECT_EQ(cache.size(), 0u);  // expired entry removed on the way out
}

TEST(ResponseCache, EvictsLeastRecentlyUsed) {
  ResponseCache cache({.capacity = 3, .shards = 1, .ttl = 10'000ms});
  cache.put("/a", "a", t0());
  cache.put("/b", "b", t0());
  cache.put("/c", "c", t0());
  // Touch /a so /b becomes the LRU entry, then overflow the shard.
  EXPECT_NE(cache.get("/a", t0() + 1ms), nullptr);
  cache.put("/d", "d", t0() + 2ms);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.get("/b", t0() + 3ms), nullptr);
  EXPECT_NE(cache.get("/a", t0() + 3ms), nullptr);
  EXPECT_NE(cache.get("/c", t0() + 3ms), nullptr);
  EXPECT_NE(cache.get("/d", t0() + 3ms), nullptr);
}

TEST(ResponseCache, ShardsEvictIndependently) {
  ResponseCache cache({.capacity = 8, .shards = 4, .ttl = 10'000ms});
  ASSERT_EQ(cache.capacity_per_shard(), 2u);

  // Collect keys per shard, then overflow exactly one shard.
  std::vector<std::string> same_shard, other_shard;
  const std::uint32_t target = cache.shard_of("/seed");
  for (int i = 0; i < 64 && (same_shard.size() < 3 || other_shard.empty());
       ++i) {
    std::string key = "/key" + std::to_string(i);
    (cache.shard_of(key) == target ? same_shard : other_shard)
        .push_back(std::move(key));
  }
  ASSERT_GE(same_shard.size(), 3u);
  ASSERT_GE(other_shard.size(), 1u);

  cache.put(other_shard[0], "safe", t0());
  for (const auto& key : same_shard) cache.put(key, "x", t0());
  // The target shard evicted (3 inserts, capacity 2); the other did not.
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.get(other_shard[0], t0() + 1ms), nullptr);
}

TEST(ResponseCache, ClearDropsEverything) {
  ResponseCache cache({.capacity = 8, .shards = 2, .ttl = 10'000ms});
  cache.put("/a", "a", t0());
  cache.put("/b", "b", t0());
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("/a", t0()), nullptr);
}

// --- token bucket (pure logic, injected clock) -------------------------------

TokenBucketLimiter::Clock::time_point l0() {
  return TokenBucketLimiter::Clock::time_point{};
}

TEST(TokenBucket, BurstCapThenReject) {
  TokenBucketLimiter limiter({.tokens_per_sec = 1.0, .burst = 3.0});
  EXPECT_TRUE(limiter.allow("10.0.0.1", l0()));
  EXPECT_TRUE(limiter.allow("10.0.0.1", l0()));
  EXPECT_TRUE(limiter.allow("10.0.0.1", l0()));
  EXPECT_FALSE(limiter.allow("10.0.0.1", l0()));
  EXPECT_EQ(limiter.allowed(), 3u);
  EXPECT_EQ(limiter.rejected(), 1u);
}

TEST(TokenBucket, RefillsContinuouslyAtConfiguredRate) {
  TokenBucketLimiter limiter({.tokens_per_sec = 2.0, .burst = 2.0});
  EXPECT_TRUE(limiter.allow("c", l0()));
  EXPECT_TRUE(limiter.allow("c", l0()));
  EXPECT_FALSE(limiter.allow("c", l0()));
  // 2 tokens/s: 499ms is just short of one token, 500ms lands it.
  EXPECT_FALSE(limiter.allow("c", l0() + 499ms));
  EXPECT_TRUE(limiter.allow("c", l0() + 500ms + 1ms));
  EXPECT_FALSE(limiter.allow("c", l0() + 500ms + 2ms));
  // Refill never exceeds burst: a long quiet period buys exactly `burst`.
  EXPECT_NEAR(limiter.tokens("c", l0() + 1'000'000ms), 2.0, 1e-9);
}

TEST(TokenBucket, ClientsAreIsolated) {
  TokenBucketLimiter limiter({.tokens_per_sec = 1.0, .burst = 1.0});
  EXPECT_TRUE(limiter.allow("a", l0()));
  EXPECT_FALSE(limiter.allow("a", l0()));
  EXPECT_TRUE(limiter.allow("b", l0()));  // a's exhaustion never touches b
  EXPECT_EQ(limiter.client_count(), 2u);
}

TEST(TokenBucket, ZeroRateDisablesLimiting) {
  TokenBucketLimiter limiter({});
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(limiter.allow("a", l0()));
  EXPECT_EQ(limiter.client_count(), 0u);  // no state touched
}

// --- socket helpers ----------------------------------------------------------

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads exactly one HTTP response off a (possibly keep-alive) stream,
/// honouring Content-Length. `carry` holds bytes already read past the
/// previous response.
std::string recv_response(int fd, std::string& carry) {
  auto complete = [](const std::string& data, std::size_t& total) {
    const auto head_end = data.find("\r\n\r\n");
    if (head_end == std::string::npos) return false;
    std::size_t length = 0;
    const auto pos = data.find("Content-Length: ");
    if (pos != std::string::npos && pos < head_end) {
      length = std::strtoul(data.c_str() + pos + 16, nullptr, 10);
    }
    total = head_end + 4 + length;
    return data.size() >= total;
  };

  std::size_t total = 0;
  char buf[4096];
  while (!complete(carry, total)) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return {};
    carry.append(buf, static_cast<std::size_t>(n));
  }
  std::string response = carry.substr(0, total);
  carry.erase(0, total);
  return response;
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

// --- event-loop server over real sockets -------------------------------------

TEST(HttpServer, KeepAliveServesSequentialRequestsOnOneConnection) {
  HttpServer server(HttpServerOptions{});
  server.set_handler([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path, {}};
  });
  ASSERT_TRUE(server.start());

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  std::string carry;
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/req" + std::to_string(i);
    send_all(fd, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
    const std::string response = recv_response(fd, carry);
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
    EXPECT_EQ(body_of(response), "echo:" + path);
  }
  ::close(fd);
  server.stop();
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(HttpServer, PipelinedRequestsAnswerInOrder) {
  HttpServer server(HttpServerOptions{});
  server.set_handler([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path, {}};
  });
  ASSERT_TRUE(server.start());

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  // All three requests in one write; responses must come back in order.
  send_all(fd,
           "GET /a HTTP/1.1\r\n\r\n"
           "GET /b HTTP/1.1\r\n\r\n"
           "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n");
  std::string carry;
  EXPECT_EQ(body_of(recv_response(fd, carry)), "echo:/a");
  EXPECT_EQ(body_of(recv_response(fd, carry)), "echo:/b");
  const std::string last = recv_response(fd, carry);
  EXPECT_EQ(body_of(last), "echo:/c");
  EXPECT_NE(last.find("Connection: close"), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(HttpServer, MalformedRequestGets400AndClose) {
  HttpServer server(HttpServerOptions{});
  server.set_handler([](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok", {}};
  });
  ASSERT_TRUE(server.start());

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  send_all(fd, "BOGUS\r\n\r\n");
  std::string carry;
  const std::string response = recv_response(fd, carry);
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);
  ::close(fd);
  server.stop();
  EXPECT_EQ(server.stats().parse_errors, 1u);
}

TEST(HttpServer, ExecutorFanOutStillOrdersResponses) {
  exec::ThreadPool pool(2);
  HttpServer server(HttpServerOptions{});
  server.set_handler([](const HttpRequest& request) {
    if (request.path == "/slow") {
      std::this_thread::sleep_for(20ms);
    }
    return HttpResponse{200, "text/plain", "echo:" + request.path, {}};
  });
  server.set_executor(
      [&pool](std::function<void()> task) { pool.submit(std::move(task)); });
  ASSERT_TRUE(server.start());

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  send_all(fd, "GET /slow HTTP/1.1\r\n\r\nGET /fast HTTP/1.1\r\n\r\n");
  std::string carry;
  // Even with /slow parked on a worker, /fast must not overtake it.
  EXPECT_EQ(body_of(recv_response(fd, carry)), "echo:/slow");
  EXPECT_EQ(body_of(recv_response(fd, carry)), "echo:/fast");
  ::close(fd);
  server.stop();
}

// --- serve fleet: sharded reactors, backends, differential oracle ------------

/// X-Ripki-Request-Id is unique per request by design; strip it before
/// byte-comparing responses across server configurations.
std::string scrub_request_id(std::string response) {
  const auto pos = response.find("X-Ripki-Request-Id: ");
  if (pos == std::string::npos) return response;
  const auto eol = response.find("\r\n", pos);
  response.erase(pos, eol - pos + 2);
  return response;
}

struct FleetConfig {
  PollerBackend backend = PollerBackend::kPoll;
  std::uint32_t shards = 1;
  AcceptMode accept = AcceptMode::kAuto;
};

/// The differential matrix: {poll, epoll} x {1, 4} shards, plus the
/// handoff accept path. poll() is the oracle backend everywhere; epoll
/// rows are present only where the platform has it.
std::vector<FleetConfig> fleet_configs() {
  std::vector<FleetConfig> configs{
      {PollerBackend::kPoll, 1, AcceptMode::kAuto},
      {PollerBackend::kPoll, 4, AcceptMode::kAuto},
      {PollerBackend::kPoll, 4, AcceptMode::kHandoff},
  };
  if (poller_backend_available(PollerBackend::kEpoll)) {
    configs.push_back({PollerBackend::kEpoll, 1, AcceptMode::kAuto});
    configs.push_back({PollerBackend::kEpoll, 4, AcceptMode::kAuto});
    configs.push_back({PollerBackend::kEpoll, 4, AcceptMode::kHandoff});
  }
  return configs;
}

/// Runs the keep-alive / pipelining / malformed-request scenarios against
/// one server configuration and returns every (scrubbed) response byte
/// stream, in scenario order.
std::vector<std::string> run_fleet_scenarios(const FleetConfig& config) {
  HttpServerOptions options;
  options.shards = config.shards;
  options.backend = config.backend;
  options.accept_mode = config.accept;
  HttpServer server(options);
  server.set_handler([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path, {}};
  });
  EXPECT_TRUE(server.start());

  std::vector<std::string> transcript;

  // Keep-alive: three sequential requests on one connection.
  {
    const int fd = connect_to(server.port());
    EXPECT_GE(fd, 0);
    std::string carry;
    for (int i = 0; i < 3; ++i) {
      send_all(fd, "GET /ka" + std::to_string(i) + " HTTP/1.1\r\n\r\n");
      transcript.push_back(scrub_request_id(recv_response(fd, carry)));
    }
    ::close(fd);
  }

  // Pipelining: three requests in one write, last one closes.
  {
    const int fd = connect_to(server.port());
    EXPECT_GE(fd, 0);
    send_all(fd,
             "GET /a HTTP/1.1\r\n\r\n"
             "GET /b HTTP/1.1\r\n\r\n"
             "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n");
    std::string carry;
    for (int i = 0; i < 3; ++i) {
      transcript.push_back(scrub_request_id(recv_response(fd, carry)));
    }
    ::close(fd);
  }

  // Malformed request: 400 and close.
  {
    const int fd = connect_to(server.port());
    EXPECT_GE(fd, 0);
    send_all(fd, "BOGUS\r\n\r\n");
    std::string carry;
    transcript.push_back(scrub_request_id(recv_response(fd, carry)));
    ::close(fd);
  }

  server.stop();
  return transcript;
}

TEST(ServeFleet, DifferentialScenariosByteMatchAcrossBackendsAndShards) {
  const auto configs = fleet_configs();
  const std::vector<std::string> oracle = run_fleet_scenarios(configs[0]);
  ASSERT_EQ(oracle.size(), 7u);
  EXPECT_NE(oracle[0].find("200 OK"), std::string::npos);
  EXPECT_NE(oracle[6].find("400 Bad Request"), std::string::npos);

  for (std::size_t c = 1; c < configs.size(); ++c) {
    const auto transcript = run_fleet_scenarios(configs[c]);
    ASSERT_EQ(transcript.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_EQ(transcript[i], oracle[i])
          << "config " << c << " (backend=" << to_string(configs[c].backend)
          << " shards=" << configs[c].shards << ") scenario " << i;
    }
  }
}

TEST(ServeFleet, ReusePortServesEveryConnectionAtFourShards) {
  HttpServerOptions options;
  options.shards = 4;
  HttpServer server(options);
  server.set_handler([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path, {}};
  });
  ASSERT_TRUE(server.start());
  ASSERT_EQ(server.shard_count(), 4u);

  for (int i = 0; i < 16; ++i) {
    const int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    std::string carry;
    send_all(fd, "GET /r" + std::to_string(i) + " HTTP/1.1\r\n\r\n");
    const std::string response = recv_response(fd, carry);
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_EQ(body_of(response), "echo:/r" + std::to_string(i));
    ::close(fd);
  }
  server.stop();

  // Whichever shards the kernel picked, the fleet served everything.
  EXPECT_EQ(server.stats().connections_accepted, 16u);
  EXPECT_EQ(server.requests_served(), 16u);
  std::uint64_t across = 0;
  for (std::uint32_t i = 0; i < server.shard_count(); ++i) {
    across += server.shard_stats(i).connections_accepted;
  }
  EXPECT_EQ(across, 16u);
}

TEST(ServeFleet, HandoffDistributesConnectionsRoundRobin) {
  HttpServerOptions options;
  options.shards = 4;
  options.accept_mode = AcceptMode::kHandoff;
  HttpServer server(options);
  server.set_handler([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path, {}};
  });
  ASSERT_TRUE(server.start());
  EXPECT_STREQ(server.accept_mode(), "handoff");

  // Sequential connections: the round-robin cursor deals one per shard.
  for (int i = 0; i < 8; ++i) {
    const int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    std::string carry;
    send_all(fd, "GET /h HTTP/1.1\r\n\r\n");
    EXPECT_NE(recv_response(fd, carry).find("200 OK"), std::string::npos);
    ::close(fd);
  }
  server.stop();

  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(server.shard_stats(i).connections_accepted, 2u)
        << "shard " << i;
  }
}

TEST(ServeFleet, HandoffOverloadAnswers503AtPerShardCap) {
  HttpServerOptions options;
  options.shards = 4;
  options.accept_mode = AcceptMode::kHandoff;
  options.max_connections = 4;  // one connection per shard
  std::atomic<int> overload_drops{0};
  options.on_connection_dropped = [&](std::string_view reason) {
    if (reason == "overload") overload_drops.fetch_add(1);
  };
  HttpServer server(options);
  server.set_handler([](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok", {}};
  });
  ASSERT_TRUE(server.start());

  // Fill every shard's single slot with a live keep-alive connection.
  std::vector<int> held;
  for (int i = 0; i < 4; ++i) {
    const int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    std::string carry;
    send_all(fd, "GET /fill HTTP/1.1\r\n\r\n");
    ASSERT_NE(recv_response(fd, carry).find("200 OK"), std::string::npos);
    held.push_back(fd);
  }

  // The next connection round-robins onto a full shard: best-effort 503.
  const int extra = connect_to(server.port());
  ASSERT_GE(extra, 0);
  std::string carry;
  send_all(extra, "GET /x HTTP/1.1\r\n\r\n");
  const std::string refused = recv_response(extra, carry);
  EXPECT_NE(refused.find("503"), std::string::npos) << refused;
  ::close(extra);

  for (const int fd : held) ::close(fd);
  server.stop();
  EXPECT_EQ(server.stats().overloaded, 1u);
  EXPECT_EQ(overload_drops.load(), 1);
}

TEST(ServeFleet, IdleSweepClosesOnInjectedClockOnly) {
  // The server never reads a raw clock: advancing this injected time is
  // the only thing that can trigger the idle sweep.
  std::atomic<std::int64_t> fake_ms{0};
  HttpServerOptions options;
  options.shards = 2;
  options.idle_timeout = std::chrono::milliseconds(5'000);
  options.clock = [&fake_ms] {
    return std::chrono::steady_clock::time_point{} +
           std::chrono::milliseconds(fake_ms.load());
  };
  std::atomic<int> idle_drops{0};
  options.on_connection_dropped = [&](std::string_view reason) {
    if (reason == "idle") idle_drops.fetch_add(1);
  };
  HttpServer server(options);
  server.set_handler([](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok", {}};
  });
  ASSERT_TRUE(server.start());

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  std::string carry;
  send_all(fd, "GET /once HTTP/1.1\r\n\r\n");
  ASSERT_NE(recv_response(fd, carry).find("200 OK"), std::string::npos);

  // Well past wall-clock instants but under fake time: stays open.
  std::this_thread::sleep_for(250ms);
  EXPECT_EQ(server.stats().idle_closed, 0u);

  // Advance fake time past the timeout: the next sweep closes it.
  fake_ms.store(6'000);
  char byte = 0;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  ssize_t n = -1;
  while (std::chrono::steady_clock::now() < deadline) {
    n = ::recv(fd, &byte, 1, MSG_DONTWAIT);
    if (n == 0) break;  // orderly close from the sweep
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(n, 0);
  ::close(fd);
  server.stop();
  EXPECT_EQ(server.stats().idle_closed, 1u);
  EXPECT_EQ(idle_drops.load(), 1);
}

TEST(ServeFleet, ZeroCopySharedBodyWritesSameBytes) {
  // A handler answering via shared_body must produce byte-identical wire
  // output to one answering via the owned body string.
  const auto shared =
      std::make_shared<const std::string>("{\"zero\":\"copy\"}");
  HttpServerOptions options;
  HttpServer server(options);
  server.set_handler([&shared](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    if (request.path == "/shared") {
      response.shared_body = shared;
    } else {
      response.body = *shared;
    }
    return response;
  });
  ASSERT_TRUE(server.start());

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  std::string carry;
  send_all(fd, "GET /shared HTTP/1.1\r\n\r\n");
  const std::string via_shared = scrub_request_id(recv_response(fd, carry));
  send_all(fd, "GET /owned HTTP/1.1\r\n\r\n");
  const std::string via_owned = scrub_request_id(recv_response(fd, carry));
  ::close(fd);
  server.stop();

  EXPECT_EQ(via_shared, via_owned);
  EXPECT_NE(via_shared.find("Content-Length: 15"), std::string::npos);
  EXPECT_EQ(body_of(via_shared), "{\"zero\":\"copy\"}");
}

// --- query service against a real pipeline run -------------------------------

web::EcosystemConfig small_config() {
  web::EcosystemConfig config;
  config.domain_count = 2'000;
  config.isp_count = 150;
  config.hoster_count = 60;
  config.enterprise_count = 200;
  config.transit_count = 30;
  return config;
}

/// One pipeline run shared by every service test (the expensive part).
class ServeServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eco_ = web::Ecosystem::generate(small_config()).release();
    pipeline_ = new core::MeasurementPipeline(*eco_, core::PipelineConfig{});
    dataset_ = new core::Dataset(pipeline_->run());
    snapshot_ = Snapshot::build(*dataset_, pipeline_->rib(),
                                pipeline_->validation_report().vrps,
                                /*generation=*/1);
  }
  static void TearDownTestSuite() {
    snapshot_.reset();
    delete dataset_;
    delete pipeline_;
    delete eco_;
    dataset_ = nullptr;
    pipeline_ = nullptr;
    eco_ = nullptr;
  }

  static HttpRequest get(std::string target) {
    HttpRequest request;
    request.method = "GET";
    request.target = target;
    const auto q = target.find('?');
    request.path = q == std::string::npos ? target : target.substr(0, q);
    request.client = "127.0.0.1";
    return request;
  }

  static web::Ecosystem* eco_;
  static core::MeasurementPipeline* pipeline_;
  static core::Dataset* dataset_;
  static std::shared_ptr<const Snapshot> snapshot_;
};

web::Ecosystem* ServeServiceTest::eco_ = nullptr;
core::MeasurementPipeline* ServeServiceTest::pipeline_ = nullptr;
core::Dataset* ServeServiceTest::dataset_ = nullptr;
std::shared_ptr<const Snapshot> ServeServiceTest::snapshot_;

TEST_F(ServeServiceTest, DomainLookupByteMatchesDatasetRendering) {
  QueryService service(QueryServiceOptions{});
  service.publish(snapshot_);

  // Every 97th record: the service answer must byte-match the rendering
  // computed directly from the dataset record.
  for (std::size_t i = 0; i < dataset_->domains.size(); i += 97) {
    const auto record = dataset_->domains[i];
    const HttpResponse response =
        service.handle(get("/v1/domain/" + std::string(record.name)));
    ASSERT_EQ(response.status, 200) << record.name;
    EXPECT_EQ(response.body_bytes(), Snapshot::render_domain_json(record, 1));
  }
}

TEST_F(ServeServiceTest, PrefixOutcomeMatchesValidatorOracle) {
  QueryService service(QueryServiceOptions{});
  service.publish(snapshot_);

  std::size_t checked = 0;
  for (std::size_t i = 0; i < dataset_->domains.size() && checked < 50; i += 41) {
    for (const core::PrefixAsPair& pair : dataset_->domains[i].primary().pairs) {
      const std::string target = "/v1/prefix/" + pair.prefix.to_string() + "/" +
                                 std::to_string(pair.origin.value());
      const HttpResponse response = service.handle(get(target));
      ASSERT_EQ(response.status, 200) << target;
      const rpki::OriginValidity expected =
          snapshot_->validate(pair.prefix, pair.origin);
      EXPECT_NE(response.body_bytes().find("\"validity\":\"" +
                    std::string(to_string(expected)) + "\""),
                std::string::npos)
          << target << " body: " << response.body_bytes();
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(ServeServiceTest, ErrorPaths404And400And503) {
  QueryService service(QueryServiceOptions{});

  // Before any snapshot: 503.
  EXPECT_EQ(service.handle(get("/v1/summary")).status, 503);

  service.publish(snapshot_);
  EXPECT_EQ(service.handle(get("/v1/domain/no-such-domain.example")).status, 404);
  EXPECT_EQ(service.handle(get("/v1/nothing-here")).status, 404);
  EXPECT_EQ(service.handle(get("/v1/ip/not-an-address")).status, 400);
  EXPECT_EQ(service.handle(get("/v1/domain/bad%zzescape")).status, 400);
  EXPECT_EQ(service.handle(get("/v1/prefix/10.0.0.0/notanasn")).status, 400);

  HttpRequest post = get("/v1/summary");
  post.method = "POST";
  EXPECT_EQ(service.handle(post).status, 405);
}

TEST_F(ServeServiceTest, PercentEncodedPrefixSegmentWorks) {
  QueryService service(QueryServiceOptions{});
  service.publish(snapshot_);
  // "10.0.0.0%2F16" decodes to one "10.0.0.0/16" segment; both spellings
  // must answer, and identically apart from being distinct cache keys.
  const HttpResponse encoded = service.handle(get("/v1/prefix/10.0.0.0%2F16/65001"));
  const HttpResponse plain = service.handle(get("/v1/prefix/10.0.0.0/16/65001"));
  ASSERT_EQ(encoded.status, 200);
  ASSERT_EQ(plain.status, 200);
  EXPECT_EQ(encoded.body_bytes(), plain.body_bytes());
}

TEST_F(ServeServiceTest, CacheServesSecondLookupAndInvalidatesOnPublish) {
  QueryService service(QueryServiceOptions{});
  service.publish(snapshot_);

  const std::string target =
      "/v1/domain/" + std::string(dataset_->domains.name(0));
  const HttpResponse first = service.handle(get(target));
  ASSERT_EQ(first.status, 200);
  EXPECT_EQ(service.cache().hits(), 0u);
  const HttpResponse second = service.handle(get(target));
  EXPECT_EQ(second.body_bytes(), first.body_bytes());
  EXPECT_EQ(service.cache().hits(), 1u);

  // Publishing drops the cache so no stale generation can be served.
  service.publish(Snapshot::build(*dataset_, pipeline_->rib(),
                                  pipeline_->validation_report().vrps,
                                  /*generation=*/2));
  const HttpResponse fresh = service.handle(get(target));
  EXPECT_EQ(service.cache().hits(), 1u);
  EXPECT_NE(fresh.body_bytes().find("\"generation\":2"), std::string::npos);
}

TEST_F(ServeServiceTest, RateLimiterAnswers429WithRetryAfter) {
  QueryServiceOptions options;
  options.rate_limit.tokens_per_sec = 1.0;
  options.rate_limit.burst = 2.0;
  QueryService service(options);
  service.publish(snapshot_);

  EXPECT_EQ(service.handle(get("/v1/summary")).status, 200);
  EXPECT_EQ(service.handle(get("/v1/summary")).status, 200);
  const HttpResponse limited = service.handle(get("/v1/summary"));
  EXPECT_EQ(limited.status, 429);
  ASSERT_FALSE(limited.headers.empty());
  EXPECT_EQ(limited.headers[0].first, "Retry-After");

  // A different client is not affected by the exhausted bucket.
  HttpRequest other = get("/v1/summary");
  other.client = "192.0.2.9";
  EXPECT_EQ(service.handle(other).status, 200);
  EXPECT_EQ(service.limiter().rejected(), 1u);
}

TEST_F(ServeServiceTest, MetricsLandInRegistry) {
  obs::Registry registry;
  QueryServiceOptions options;
  options.registry = &registry;
  QueryService service(options);
  service.publish(snapshot_);

  const std::string target =
      "/v1/domain/" + std::string(dataset_->domains.name(0));
  service.handle(get(target));
  service.handle(get(target));

  EXPECT_EQ(registry.counter("ripki.serve.requests_total").value(), 2);
  EXPECT_EQ(registry.counter("ripki.serve.cache_hits").value(), 1);
  EXPECT_EQ(registry.gauge("ripki.serve.snapshot_generation").value(), 1);
  EXPECT_GE(registry.histogram("ripki.serve.latency.domain").count(), 1u);
  EXPECT_GE(registry.histogram("ripki.serve.latency.cached").count(), 1u);
}

TEST_F(ServeServiceTest, SnapshotSwapRacesInFlightReads) {
  QueryService service(QueryServiceOptions{});
  service.publish(snapshot_);

  // Readers hammer lookups while the main thread republishes new
  // generations: every response must be 200 and internally consistent
  // (tsan guards the shared_ptr swap and cache invalidation).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string_view name =
            dataset_->domains.name(i % dataset_->domains.size());
        const HttpResponse response =
            service.handle(get("/v1/domain/" + std::string(name)));
        if (response.status != 200) bad.fetch_add(1);
        i += 7;
      }
    });
  }
  for (std::uint64_t generation = 2; generation <= 20; ++generation) {
    service.publish(Snapshot::build(*dataset_, pipeline_->rib(),
                                    pipeline_->validation_report().vrps,
                                    generation));
    std::this_thread::sleep_for(1ms);
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_NE(service.snapshot()->generation(), 1u);
}

TEST_F(ServeServiceTest, EndToEndOverSockets) {
  QueryServiceOptions options;
  QueryService service(options);
  service.publish(snapshot_);
  ASSERT_TRUE(service.start());

  const int fd = connect_to(service.port());
  ASSERT_GE(fd, 0);
  std::string carry;

  const auto record = dataset_->domains[3];
  send_all(fd, "GET /v1/domain/" + std::string(record.name) + " HTTP/1.1\r\n\r\n");
  std::string response = recv_response(fd, carry);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(response), Snapshot::render_domain_json(record, 1));

  // Keep-alive: the same connection serves /v1/summary next.
  send_all(fd, "GET /v1/summary HTTP/1.1\r\n\r\n");
  response = recv_response(fd, carry);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(response), snapshot_->summary_json());

  send_all(fd, "GET /v1/domain/absent.invalid HTTP/1.1\r\n\r\n");
  EXPECT_NE(recv_response(fd, carry).find("404 Not Found"), std::string::npos);

  ::close(fd);
  service.stop();
}

TEST_F(ServeServiceTest, LimiterBudgetIsShardCountInvariant) {
  // The limiter is shared across reactor shards on purpose: a client's
  // aggregate budget must not scale with the shard count. Whatever shard
  // its requests land on, 4 of 8 pass with burst=4 — at 1 shard and at 4.
  for (const std::uint32_t shards : {1u, 4u}) {
    QueryServiceOptions options;
    options.http.shards = shards;
    options.rate_limit.tokens_per_sec = 0.0001;  // no meaningful refill
    options.rate_limit.burst = 4.0;
    QueryService service(options);
    service.publish(snapshot_);

    int ok = 0, limited = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
      HttpRequest request = get("/v1/summary");
      request.shard = i % shards;  // spread across every reactor shard
      const int status = service.handle(request).status;
      (status == 200 ? ok : limited) += 1;
    }
    EXPECT_EQ(ok, 4) << "shards=" << shards;
    EXPECT_EQ(limited, 4) << "shards=" << shards;
    EXPECT_EQ(service.limiter().rejected(), 4u) << "shards=" << shards;
  }
}

TEST_F(ServeServiceTest, ShardsJsonReportsPerShardFleetTelemetry) {
  QueryServiceOptions options;
  options.http.shards = 2;
  options.http.accept_mode = AcceptMode::kHandoff;  // deterministic spread
  QueryService service(options);
  service.publish(snapshot_);
  ASSERT_TRUE(service.start());

  for (int i = 0; i < 4; ++i) {
    const int fd = connect_to(service.port());
    ASSERT_GE(fd, 0);
    std::string carry;
    send_all(fd, "GET /v1/summary HTTP/1.1\r\n\r\n");
    EXPECT_NE(recv_response(fd, carry).find("200 OK"), std::string::npos);
    ::close(fd);
  }
  service.stop();

  const std::string json = service.shards_json();
  EXPECT_EQ(json.find("[{\"shard\":0,"), 0u) << json;
  EXPECT_NE(json.find("{\"shard\":1,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"accepted\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"conn_dropped\":{\"overload\":0,\"idle\":0}"),
            std::string::npos)
      << json;
  // Requests hit both shards' caches: the summary target filled one entry
  // in each shard's cache and the repeats hit.
  EXPECT_EQ(service.cache_hits(), 2u);
  EXPECT_EQ(service.cache_misses(), 2u);
}

TEST_F(ServeServiceTest, SnapshotSwapUnderLoadAtFourShards) {
  // The 4-shard variant of the RCU race: four reactor threads answer over
  // real sockets while the main thread republishes generations. Every
  // response must be 200 — no torn snapshot, no stale-cache crash.
  QueryServiceOptions options;
  options.http.shards = 4;
  QueryService service(options);
  service.publish(snapshot_);
  ASSERT_TRUE(service.start());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      const int fd = connect_to(service.port());
      if (fd < 0) {
        bad.fetch_add(1);
        return;
      }
      std::string carry;
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string_view name =
            dataset_->domains.name(i % dataset_->domains.size());
        send_all(fd, "GET /v1/domain/" + std::string(name) +
                         " HTTP/1.1\r\n\r\n");
        const std::string response = recv_response(fd, carry);
        if (response.find("200 OK") == std::string::npos) bad.fetch_add(1);
        i += 13;
      }
      ::close(fd);
    });
  }
  for (std::uint64_t generation = 2; generation <= 12; ++generation) {
    service.publish(Snapshot::build(*dataset_, pipeline_->rib(),
                                    pipeline_->validation_report().vrps,
                                    generation));
    std::this_thread::sleep_for(2ms);
  }
  stop.store(true);
  for (auto& client : clients) client.join();
  service.stop();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(service.server().shard_count(), 4u);
}

// --- access log and slow-request recorder ------------------------------------

AccessLog::Entry access_entry(std::string id, int status,
                              std::uint64_t duration_us) {
  AccessLog::Entry entry;
  entry.request_id = std::move(id);
  entry.client = "127.0.0.1";
  entry.method = "GET";
  entry.target = "/v1/summary";
  entry.endpoint = "summary";
  entry.status = status;
  entry.duration_us = duration_us;
  return entry;
}

TEST(AccessLog, RingEvictsOldestAndSequenceNeverRecycles) {
  AccessLog log(/*capacity=*/2);
  log.record(access_entry("aaaa", 200, 10));
  log.record(access_entry("bbbb", 200, 20));
  log.record(access_entry("cccc", 404, 30));

  EXPECT_EQ(log.total(), 3u);
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  // Oldest first; the evicted entry's sequence number is not reused, so a
  // scraper can tell one entry was missed.
  EXPECT_EQ(entries[0].seq, 2u);
  EXPECT_EQ(entries[0].request_id, "bbbb");
  EXPECT_EQ(entries[1].seq, 3u);
  EXPECT_EQ(entries[1].status, 404);
}

TEST(AccessLog, RenderTextQuotesAwkwardValues) {
  AccessLog log(4);
  auto entry = access_entry("dddd", 200, 55);
  entry.target = "/v1/domain/has space";
  log.record(entry);

  const std::string text = log.render_text();
  EXPECT_NE(text.find("seq=1 request_id=dddd client=127.0.0.1 method=GET"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("target=\"/v1/domain/has space\""), std::string::npos);
  EXPECT_NE(text.find("status=200 duration_us=55"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

SlowRequestRecorder::Entry slow_entry(std::string endpoint,
                                      std::uint64_t duration_us) {
  SlowRequestRecorder::Entry entry;
  entry.request_id = "feed0000" + std::to_string(duration_us);
  entry.client = "127.0.0.1";
  entry.method = "GET";
  entry.target = "/v1/x";
  entry.endpoint = std::move(endpoint);
  entry.status = 200;
  entry.duration_us = duration_us;
  return entry;
}

TEST(SlowRequest, KeepsKWorstPerEndpointSlowestFirst) {
  SlowRequestRecorder slow(/*per_endpoint=*/2);
  // summary's half-empty ring keeps the floor open for the whole test.
  slow.offer(slow_entry("summary", 5));
  slow.offer(slow_entry("domain", 10));
  slow.offer(slow_entry("domain", 30));
  slow.offer(slow_entry("domain", 20));

  const auto domain = slow.worst("domain");
  ASSERT_EQ(domain.size(), 2u);
  EXPECT_EQ(domain[0].duration_us, 30u);
  EXPECT_EQ(domain[1].duration_us, 20u);  // 10 µs displaced
  ASSERT_EQ(slow.worst("summary").size(), 1u);
  EXPECT_TRUE(slow.worst("unseen").empty());
  EXPECT_EQ(slow.endpoints(), (std::vector<std::string>{"domain", "summary"}));
  EXPECT_EQ(slow.offered(), 4u);
  EXPECT_EQ(slow.admitted(), 4u);
}

TEST(SlowRequest, FloorOpensOnlyOnceEveryRingIsFull) {
  SlowRequestRecorder slow(/*per_endpoint=*/2);
  slow.offer(slow_entry("domain", 100));
  // One ring with room: the floor stays open.
  EXPECT_EQ(slow.floor_us(), 0u);
  slow.offer(slow_entry("domain", 200));
  // Both slots taken: the floor is the fastest resident (100 µs).
  EXPECT_EQ(slow.floor_us(), 100u);

  // At or below the floor: rejected without touching the ring.
  slow.offer(slow_entry("domain", 100));
  EXPECT_EQ(slow.admitted(), 2u);
  EXPECT_EQ(slow.offered(), 3u);

  // Beating the floor displaces the fastest resident and raises it.
  slow.offer(slow_entry("domain", 150));
  EXPECT_EQ(slow.admitted(), 3u);
  EXPECT_EQ(slow.floor_us(), 150u);
  const auto domain = slow.worst("domain");
  ASSERT_EQ(domain.size(), 2u);
  EXPECT_EQ(domain[0].duration_us, 200u);
  EXPECT_EQ(domain[1].duration_us, 150u);

  // The documented caveat: a brand-new endpoint tag arriving once every
  // existing ring is full is skipped by the fast path until it beats the
  // floor...
  slow.offer(slow_entry("summary", 1));
  EXPECT_TRUE(slow.worst("summary").empty());
  EXPECT_EQ(slow.floor_us(), 150u);

  // ...and the first one that does creates its ring, whose free slot
  // re-opens the floor.
  slow.offer(slow_entry("summary", 160));
  ASSERT_EQ(slow.worst("summary").size(), 1u);
  EXPECT_EQ(slow.floor_us(), 0u);
}

TEST(SlowRequest, RenderJsonCarriesSpanTrees) {
  SlowRequestRecorder slow(2);
  auto entry = slow_entry("domain", 90);
  entry.request_id = "00000000000000aa";
  entry.spans.push_back({"serve.handle.domain", 3, 80});
  entry.spans.push_back({"serve.handle", 0, 90});
  entry.spans_dropped = 1;
  slow.offer(std::move(entry));

  const std::string json = slow.render_json();
  EXPECT_EQ(json.find("{\"slowz\":"), 0u) << json;
  EXPECT_NE(json.find("\"request_id\":\"00000000000000aa\""), std::string::npos);
  EXPECT_NE(json.find("\"endpoint\":\"domain\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"serve.handle.domain\",\"start_us\":3,"
                      "\"duration_us\":80"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"spans_dropped\":1"), std::string::npos);
}

// --- request-scoped observability through the service ------------------------

TEST_F(ServeServiceTest, RequestIdFlowsFromHeaderToAccessLogAndSlowz) {
  // Spans only record when a registry is wired (a null registry keeps
  // obs::Span inert); the access log and request ids work either way.
  obs::Registry registry;
  QueryServiceOptions options;
  options.registry = &registry;
  QueryService service(options);
  service.publish(snapshot_);
  ASSERT_TRUE(service.start());

  const int fd = connect_to(service.port());
  ASSERT_GE(fd, 0);
  std::string carry;
  send_all(fd, "GET /v1/summary HTTP/1.1\r\n\r\n");
  const std::string response = recv_response(fd, carry);
  ::close(fd);

  // Every response carries a 16-hex-digit request id header.
  const auto pos = response.find("X-Ripki-Request-Id: ");
  ASSERT_NE(pos, std::string::npos) << response;
  const std::string id = response.substr(pos + 20, 16);
  EXPECT_EQ(id.size(), 16u);
  EXPECT_NE(obs::RequestContext::parse_id(id), 0u) << id;

  service.stop();

  // The same id shows up in the access log with the routing tag...
  const auto entries = service.access_log().entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].request_id, id);
  EXPECT_EQ(entries[0].endpoint, "summary");
  EXPECT_EQ(entries[0].status, 200);
  EXPECT_EQ(entries[0].target, "/v1/summary");

  // ...and in the slow-request ring, span tree attached.
  const auto worst = service.slow_requests().worst("summary");
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].request_id, id);
  ASSERT_FALSE(worst[0].spans.empty());
  bool saw_handle = false, saw_endpoint = false;
  for (const auto& span : worst[0].spans) {
    saw_handle = saw_handle || span.path == "serve.handle";
    saw_endpoint = saw_endpoint || span.path == "serve.handle.summary";
  }
  EXPECT_TRUE(saw_handle);
  EXPECT_TRUE(saw_endpoint);
}

TEST_F(ServeServiceTest, AdminEndpointsServeAndBypassRateLimiter) {
  QueryServiceOptions options;
  options.rate_limit.tokens_per_sec = 0.001;
  options.rate_limit.burst = 1.0;
  QueryService service(options);
  service.publish(snapshot_);

  EXPECT_EQ(service.handle(get("/v1/summary")).status, 200);
  EXPECT_EQ(service.handle(get("/v1/summary")).status, 429);  // bucket empty

  // Diagnostics must stay reachable from the same (limited) client.
  const HttpResponse access = service.handle(get("/accessz"));
  EXPECT_EQ(access.status, 200);
  EXPECT_NE(access.body.find("endpoint=summary"), std::string::npos);

  const HttpResponse slowz = service.handle(get("/slowz"));
  EXPECT_EQ(slowz.status, 200);
  EXPECT_EQ(slowz.content_type, "application/json");
  EXPECT_NE(slowz.body.find("\"slowz\""), std::string::npos);

  // No profiler wired: /pprofz reports unavailable rather than 404.
  EXPECT_EQ(service.handle(get("/pprofz?seconds=1")).status, 503);

  // Rejected requests are themselves logged, tagged "rejected".
  bool saw_rejected = false;
  for (const auto& entry : service.access_log().entries()) {
    saw_rejected = saw_rejected || (entry.endpoint == "rejected" &&
                                    entry.status == 429);
  }
  EXPECT_TRUE(saw_rejected);
}

TEST_F(ServeServiceTest, ConnectionDropsCountByReason) {
  obs::Registry registry;
  QueryServiceOptions options;
  options.registry = &registry;
  options.http.max_connections = 1;
  QueryService service(options);
  service.publish(snapshot_);
  ASSERT_TRUE(service.start());

  // First connection occupies the only slot...
  const int first = connect_to(service.port());
  ASSERT_GE(first, 0);
  std::string carry1;
  send_all(first, "GET /v1/summary HTTP/1.1\r\n\r\n");
  ASSERT_NE(recv_response(first, carry1).find("200 OK"), std::string::npos);

  // ...so the next accept is turned away with a best-effort 503.
  const int second = connect_to(service.port());
  ASSERT_GE(second, 0);
  std::string carry2;
  send_all(second, "GET /v1/summary HTTP/1.1\r\n\r\n");
  const std::string refused = recv_response(second, carry2);
  EXPECT_NE(refused.find("503"), std::string::npos) << refused;

  ::close(first);
  ::close(second);
  service.stop();

  EXPECT_EQ(
      registry.counter("ripki.serve.conn_dropped{reason=overload}").value(),
      1u);
  EXPECT_EQ(service.server().stats().overloaded, 1u);
}

TEST_F(ServeServiceTest, EveryServeAndExecMetricCarriesHelpText) {
  obs::Registry registry;
  exec::ThreadPool pool(2, &registry);  // registers ripki.exec.* metrics
  QueryServiceOptions options;
  options.registry = &registry;
  options.pool = &pool;
  QueryService service(options);
  service.publish(snapshot_);

  // Touch enough of the surface that lazily-created metrics exist too.
  service.handle(get("/v1/domain/" + std::string(dataset_->domains.name(0))));
  service.handle(get("/v1/summary"));
  service.handle(get("/accessz"));
  service.handle(get("/v1/nothing-here"));

  // Registry level: every metric registered on the serve path — not just
  // the serve/exec families — carries HELP text.
  std::size_t checked = 0;
  for (const auto& snapshot : registry.collect()) {
    EXPECT_FALSE(snapshot.help.empty()) << snapshot.name << " has no HELP";
    ++checked;
  }
  EXPECT_GE(checked, 10u);

  // Exposition level: each family appears with a HELP line, and the two
  // labeled conn_dropped variants fold into one family with one HELP.
  std::ostringstream os;
  core::export_metrics_prometheus(registry, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP ripki_serve_requests_total"), std::string::npos);
  EXPECT_NE(text.find("# HELP ripki_serve_conn_dropped"), std::string::npos);
  EXPECT_NE(text.find("ripki_serve_conn_dropped{reason=\"overload\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ripki_serve_conn_dropped{reason=\"idle\"}"),
            std::string::npos);
  EXPECT_EQ(text.find("# HELP ripki_serve_conn_dropped",
                      text.find("# HELP ripki_serve_conn_dropped") + 1),
            std::string::npos)
      << "family HELP must be emitted once";
}

}  // namespace
}  // namespace ripki::serve
