#include <gtest/gtest.h>

#include "rpki/cert.hpp"
#include "rpki/crl.hpp"
#include "rpki/manifest.hpp"
#include "rpki/origin_validation.hpp"
#include "rpki/repository.hpp"
#include "rpki/resources.hpp"
#include "rpki/roa.hpp"
#include "rpki/tal.hpp"
#include "rpki/validator.hpp"
#include "util/prng.hpp"

namespace ripki::rpki {
namespace {

net::Prefix P(const std::string& text) {
  auto p = net::Prefix::parse(text);
  EXPECT_TRUE(p.ok()) << text;
  return p.value();
}

constexpr Timestamp kNow = kDefaultNow;
const ValidityWindow kWindow{kNow - 30 * kSecondsPerDay, kNow + 30 * kSecondsPerDay};

// --- ResourceSet -------------------------------------------------------------

TEST(ResourceSet, ContainmentSemantics) {
  ResourceSet parent({P("10.0.0.0/8"), P("2a00::/12")});
  EXPECT_TRUE(parent.contains(P("10.5.0.0/16")));
  EXPECT_TRUE(parent.contains(P("10.0.0.0/8")));
  EXPECT_FALSE(parent.contains(P("11.0.0.0/8")));
  EXPECT_TRUE(parent.contains(P("2a00:1450::/32")));
  EXPECT_FALSE(parent.contains(P("2c00::/16")));

  ResourceSet child({P("10.1.0.0/16"), P("10.2.0.0/16")});
  EXPECT_TRUE(parent.contains(child));
  child.add(P("192.168.0.0/24"));
  EXPECT_FALSE(parent.contains(child));
}

TEST(ResourceSet, DeduplicatesAndSorts) {
  ResourceSet set;
  set.add(P("10.0.0.0/8"));
  set.add(P("10.0.0.0/8"));
  EXPECT_EQ(set.size(), 1u);
}

TEST(ResourceSet, EmptySetContainsEmptySet) {
  ResourceSet empty;
  EXPECT_TRUE(empty.contains(ResourceSet{}));
  EXPECT_FALSE(empty.contains(P("10.0.0.0/8")));
}

TEST(ResourceSet, TlvRoundTrip) {
  ResourceSet set({P("10.0.0.0/8"), P("192.168.2.0/24"), P("2a00:1450::/32")});
  encoding::TlvWriter writer;
  set.encode_into(writer);
  const auto bytes = std::move(writer).take();

  auto map = encoding::TlvMap::parse(bytes);
  ASSERT_TRUE(map.ok());
  auto decoded = ResourceSet::decode(map.value().elements().front().value);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), set);
}

// --- Certificates --------------------------------------------------------------

class CertFixture : public ::testing::Test {
 protected:
  CertFixture() : prng_(99) {
    anchor_ = make_trust_anchor("RIPE", ResourceSet({P("62.0.0.0/8")}), kWindow,
                                prng_);
  }

  Certificate issue_ca(const std::string& subject, ResourceSet resources,
                       crypto::KeyPair& keys_out) {
    keys_out = crypto::generate_keypair(prng_);
    CertificateData data;
    data.serial = 42;
    data.subject = subject;
    data.issuer = anchor_.cert.data().subject;
    data.is_ca = true;
    data.public_key = keys_out.pub;
    data.resources = std::move(resources);
    data.validity = kWindow;
    return Certificate::issue(std::move(data), anchor_.keys.pub, anchor_.keys.priv);
  }

  util::Prng prng_;
  TrustAnchor anchor_;
};

TEST_F(CertFixture, TrustAnchorSelfSignatureVerifies) {
  EXPECT_TRUE(anchor_.cert.verify_signature(anchor_.cert.data().public_key));
  EXPECT_TRUE(anchor_.cert.data().is_ca);
  EXPECT_EQ(anchor_.cert.data().authority_key_id, anchor_.keys.pub.key_id());
}

TEST_F(CertFixture, IssuedCertVerifiesAgainstIssuerOnly) {
  crypto::KeyPair ca_keys;
  const Certificate cert = issue_ca("Example Org", ResourceSet({P("62.1.0.0/16")}),
                                    ca_keys);
  EXPECT_TRUE(cert.verify_signature(anchor_.keys.pub));
  EXPECT_FALSE(cert.verify_signature(ca_keys.pub));
  EXPECT_EQ(cert.data().authority_key_id, anchor_.keys.pub.key_id());
}

TEST_F(CertFixture, EncodingRoundTrip) {
  crypto::KeyPair ca_keys;
  const Certificate cert = issue_ca("Example Org", ResourceSet({P("62.1.0.0/16")}),
                                    ca_keys);
  const auto bytes = cert.encode();
  auto decoded = Certificate::decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().data().subject, "Example Org");
  EXPECT_EQ(decoded.value().data().serial, 42u);
  EXPECT_EQ(decoded.value().data().resources, cert.data().resources);
  EXPECT_TRUE(decoded.value().verify_signature(anchor_.keys.pub));
}

TEST_F(CertFixture, TamperedEncodingFailsVerification) {
  crypto::KeyPair ca_keys;
  const Certificate cert = issue_ca("Example Org", ResourceSet({P("62.1.0.0/16")}),
                                    ca_keys);
  auto bytes = cert.encode();
  // Flip one byte inside the subject string.
  const std::string needle = "Example Org";
  for (std::size_t i = 0; i + needle.size() < bytes.size(); ++i) {
    if (std::equal(needle.begin(), needle.end(), bytes.begin() + i)) {
      bytes[i] ^= 0x20;
      break;
    }
  }
  auto decoded = Certificate::decode(bytes);
  ASSERT_TRUE(decoded.ok());  // structurally fine
  EXPECT_FALSE(decoded.value().verify_signature(anchor_.keys.pub));
}

TEST_F(CertFixture, DecodeRejectsGarbage) {
  const util::Bytes garbage = {1, 2, 3, 4, 5};
  EXPECT_FALSE(Certificate::decode(garbage).ok());
}

// --- ROA -------------------------------------------------------------------------

TEST_F(CertFixture, RoaSignatureAndRoundTrip) {
  crypto::KeyPair ca_keys;
  const Certificate ca = issue_ca("Holder", ResourceSet({P("62.1.0.0/16")}), ca_keys);
  (void)ca;

  RoaContent content;
  content.asn = net::Asn(64512);
  content.prefixes = {RoaPrefix{P("62.1.0.0/16"), 20},
                      RoaPrefix{P("62.1.128.0/17"), 17}};
  const Roa roa = Roa::create(content, "Holder", ca_keys.pub, ca_keys.priv,
                              crypto::generate_keypair(prng_), 77, kWindow);

  EXPECT_TRUE(roa.verify_content_signature());
  EXPECT_TRUE(roa.ee_cert().verify_signature(ca_keys.pub));
  EXPECT_FALSE(roa.ee_cert().data().is_ca);

  const auto bytes = roa.encode();
  auto decoded = Roa::decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().content(), content);
  EXPECT_TRUE(decoded.value().verify_content_signature());
}

TEST_F(CertFixture, RoaEeResourcesCoverPrefixes) {
  crypto::KeyPair ca_keys;
  issue_ca("Holder", ResourceSet({P("62.1.0.0/16")}), ca_keys);
  RoaContent content;
  content.asn = net::Asn(64512);
  content.prefixes = {RoaPrefix{P("62.1.4.0/24"), 24}};
  const Roa roa = Roa::create(content, "Holder", ca_keys.pub, ca_keys.priv,
                              crypto::generate_keypair(prng_), 78, kWindow);
  EXPECT_TRUE(roa.ee_cert().data().resources.contains(P("62.1.4.0/24")));
}

// --- CRL ---------------------------------------------------------------------------

TEST_F(CertFixture, CrlRevocationAndSignature) {
  CrlData data;
  data.issuer = "Holder";
  data.this_update = kNow - kSecondsPerDay;
  data.next_update = kNow + kSecondsPerDay;
  data.revoked_serials = {5, 3, 9};
  const Crl crl = Crl::create(data, anchor_.keys.priv);

  EXPECT_TRUE(crl.verify_signature(anchor_.keys.pub));
  EXPECT_TRUE(crl.is_current(kNow));
  EXPECT_FALSE(crl.is_current(kNow + 2 * kSecondsPerDay));
  EXPECT_TRUE(crl.is_revoked(3));
  EXPECT_TRUE(crl.is_revoked(9));
  EXPECT_FALSE(crl.is_revoked(4));

  const auto bytes = crl.encode();
  auto decoded = Crl::decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().is_revoked(5));
  EXPECT_TRUE(decoded.value().verify_signature(anchor_.keys.pub));
}

// --- Manifest ------------------------------------------------------------------------

TEST_F(CertFixture, ManifestFindAndSignature) {
  ManifestData data;
  data.issuer = "Holder";
  data.manifest_number = 3;
  data.this_update = kNow - kSecondsPerDay;
  data.next_update = kNow + kSecondsPerDay;
  data.entries = {ManifestEntry{"roa-AS1-0.roa", crypto::sha256("x")},
                  ManifestEntry{"roa-AS2-1.roa", crypto::sha256("y")}};
  const Manifest manifest = Manifest::create(data, anchor_.keys.priv);

  EXPECT_TRUE(manifest.verify_signature(anchor_.keys.pub));
  EXPECT_TRUE(manifest.is_current(kNow));
  ASSERT_NE(manifest.find("roa-AS1-0.roa"), nullptr);
  EXPECT_EQ(manifest.find("roa-AS1-0.roa")->hash, crypto::sha256("x"));
  EXPECT_EQ(manifest.find("missing.roa"), nullptr);
}

// --- RepositoryValidator ---------------------------------------------------------------

class ValidatorFixture : public ::testing::Test {
 protected:
  ValidatorFixture() : prng_(7) {
    anchor_ = make_trust_anchor(
        "RIPE", ResourceSet({P("62.0.0.0/8"), P("2a00::/12")}), kWindow, prng_);
  }

  RoaContent simple_content(std::uint32_t asn, const std::string& prefix,
                            std::uint8_t maxlen) {
    RoaContent content;
    content.asn = net::Asn(asn);
    content.prefixes = {RoaPrefix{P(prefix), maxlen}};
    return content;
  }

  util::Prng prng_;
  TrustAnchor anchor_;
};

TEST_F(ValidatorFixture, AcceptsWellFormedRepository) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  const auto ca = builder.add_ca("Org A", ResourceSet({P("62.1.0.0/16")}));
  builder.add_roa(ca, simple_content(64512, "62.1.0.0/16", 20));
  const Repository repo = builder.build();

  const RepositoryValidator validator(kNow);
  ValidationReport report;
  validator.validate_into(repo, report);

  EXPECT_EQ(report.cas_accepted, 1u);
  EXPECT_EQ(report.roas_accepted, 1u);
  EXPECT_EQ(report.roas_rejected, 0u);
  ASSERT_EQ(report.vrps.size(), 1u);
  EXPECT_EQ(report.vrps[0].prefix, P("62.1.0.0/16"));
  EXPECT_EQ(report.vrps[0].max_length, 20);
  EXPECT_EQ(report.vrps[0].asn, net::Asn(64512));
}

TEST_F(ValidatorFixture, RejectsTamperedRoa) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  const auto ca = builder.add_ca("Org A", ResourceSet({P("62.1.0.0/16")}));
  builder.add_tampered_roa(ca, simple_content(64512, "62.1.0.0/16", 16));
  const Repository repo = builder.build();

  ValidationReport report;
  RepositoryValidator(kNow).validate_into(repo, report);
  EXPECT_EQ(report.roas_accepted, 0u);
  // The corrupted object is caught by the manifest hash check (the hash was
  // computed before corruption would be the other design; here the manifest
  // carries the corrupted object's hash, so the content signature is what
  // fails).
  EXPECT_EQ(report.roas_rejected, 1u);
  EXPECT_GE(report.rejected_for(RejectReason::kBadSignature), 1u);
  EXPECT_TRUE(report.vrps.empty());
}

TEST_F(ValidatorFixture, RejectsExpiredRoa) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  const auto ca = builder.add_ca("Org A", ResourceSet({P("62.1.0.0/16")}));
  builder.add_expired_roa(ca, simple_content(64512, "62.1.0.0/16", 16));
  const Repository repo = builder.build();

  ValidationReport report;
  RepositoryValidator(kNow).validate_into(repo, report);
  EXPECT_EQ(report.roas_accepted, 0u);
  EXPECT_EQ(report.rejected_for(RejectReason::kExpired), 1u);
}

TEST_F(ValidatorFixture, RejectsRevokedRoa) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  const auto ca = builder.add_ca("Org A", ResourceSet({P("62.1.0.0/16")}));
  builder.add_roa(ca, simple_content(64512, "62.1.0.0/16", 16));
  builder.revoke_roa(ca, 0);
  const Repository repo = builder.build();

  ValidationReport report;
  RepositoryValidator(kNow).validate_into(repo, report);
  EXPECT_EQ(report.roas_accepted, 0u);
  EXPECT_EQ(report.rejected_for(RejectReason::kRevoked), 1u);
}

TEST_F(ValidatorFixture, RejectsRevokedCaAndItsRoas) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  const auto ca = builder.add_ca("Org A", ResourceSet({P("62.1.0.0/16")}));
  builder.add_roa(ca, simple_content(64512, "62.1.0.0/16", 16));
  builder.revoke_ca(ca);
  const Repository repo = builder.build();

  ValidationReport report;
  RepositoryValidator(kNow).validate_into(repo, report);
  EXPECT_EQ(report.cas_accepted, 0u);
  EXPECT_EQ(report.cas_rejected, 1u);
  EXPECT_EQ(report.roas_accepted, 0u);
  EXPECT_EQ(report.rejected_for(RejectReason::kRevoked), 1u);
  EXPECT_TRUE(report.vrps.empty());
}

TEST_F(ValidatorFixture, RejectsResourceOverclaimingCa) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  // 193/8 is not delegated by this trust anchor.
  const auto ca =
      builder.add_overclaiming_ca("Rogue Org", ResourceSet({P("193.0.0.0/8")}));
  builder.add_roa(ca, simple_content(64999, "193.0.0.0/8", 8));
  const Repository repo = builder.build();

  ValidationReport report;
  RepositoryValidator(kNow).validate_into(repo, report);
  EXPECT_EQ(report.cas_accepted, 0u);
  EXPECT_EQ(report.rejected_for(RejectReason::kResourceOverclaim), 1u);
  EXPECT_TRUE(report.vrps.empty());
}

TEST_F(ValidatorFixture, RejectsRoaHiddenFromManifest) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  const auto ca = builder.add_ca("Org A", ResourceSet({P("62.1.0.0/16")}));
  builder.add_roa(ca, simple_content(64512, "62.1.0.0/16", 16));
  builder.add_roa(ca, simple_content(64512, "62.1.0.0/17", 17));
  builder.hide_from_manifest(ca, 1);
  const Repository repo = builder.build();

  ValidationReport report;
  RepositoryValidator(kNow).validate_into(repo, report);
  EXPECT_EQ(report.roas_accepted, 1u);
  EXPECT_EQ(report.rejected_for(RejectReason::kNotInManifest), 1u);
}

TEST_F(ValidatorFixture, MultiTrustAnchorAggregation) {
  util::Prng prng2(8);
  TrustAnchor arin =
      make_trust_anchor("ARIN", ResourceSet({P("23.0.0.0/8")}), kWindow, prng2);

  RepositoryBuilder b1(anchor_, kNow, prng_);
  const auto ca1 = b1.add_ca("Org A", ResourceSet({P("62.1.0.0/16")}));
  b1.add_roa(ca1, simple_content(64512, "62.1.0.0/16", 16));

  RepositoryBuilder b2(arin, kNow, prng2);
  const auto ca2 = b2.add_ca("Org B", ResourceSet({P("23.9.0.0/16")}));
  b2.add_roa(ca2, simple_content(64513, "23.9.0.0/16", 24));

  const std::vector<Repository> repos = {b1.build(), b2.build()};
  const auto report = RepositoryValidator(kNow).validate(repos);
  EXPECT_EQ(report.tas_processed, 2u);
  EXPECT_EQ(report.vrps.size(), 2u);
}

TEST_F(ValidatorFixture, MultiPrefixRoaEmitsOneVrpPerPrefix) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  const auto ca = builder.add_ca("Org A", ResourceSet({P("62.1.0.0/16"),
                                                       P("62.2.0.0/16")}));
  RoaContent content;
  content.asn = net::Asn(64512);
  content.prefixes = {RoaPrefix{P("62.1.0.0/16"), 16}, RoaPrefix{P("62.2.0.0/16"), 24}};
  builder.add_roa(ca, content);
  const Repository repo = builder.build();

  ValidationReport report;
  RepositoryValidator(kNow).validate_into(repo, report);
  EXPECT_EQ(report.roas_accepted, 1u);
  EXPECT_EQ(report.vrps.size(), 2u);
}

// --- RFC 6811 origin validation -----------------------------------------------------

TEST(OriginValidation, ValidExactMatch) {
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/16"), 16, net::Asn(65001)});
  EXPECT_EQ(index.validate(P("10.0.0.0/16"), net::Asn(65001)),
            OriginValidity::kValid);
}

TEST(OriginValidation, ValidWithinMaxLength) {
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/16"), 20, net::Asn(65001)});
  EXPECT_EQ(index.validate(P("10.0.64.0/18"), net::Asn(65001)),
            OriginValidity::kValid);
  EXPECT_EQ(index.validate(P("10.0.64.0/20"), net::Asn(65001)),
            OriginValidity::kValid);
}

TEST(OriginValidation, InvalidBeyondMaxLength) {
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/16"), 20, net::Asn(65001)});
  EXPECT_EQ(index.validate(P("10.0.64.0/21"), net::Asn(65001)),
            OriginValidity::kInvalid);
  EXPECT_EQ(index.validate(P("10.0.0.1/32"), net::Asn(65001)),
            OriginValidity::kInvalid);
}

TEST(OriginValidation, InvalidWrongOrigin) {
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/16"), 16, net::Asn(65001)});
  EXPECT_EQ(index.validate(P("10.0.0.0/16"), net::Asn(66666)),
            OriginValidity::kInvalid);
}

TEST(OriginValidation, NotFoundWithoutCoveringVrp) {
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/16"), 16, net::Asn(65001)});
  EXPECT_EQ(index.validate(P("10.1.0.0/16"), net::Asn(65001)),
            OriginValidity::kNotFound);
  EXPECT_EQ(index.validate(P("192.0.2.0/24"), net::Asn(65001)),
            OriginValidity::kNotFound);
  // A more-specific VRP does NOT cover a less-specific route.
  EXPECT_EQ(index.validate(P("10.0.0.0/8"), net::Asn(65001)),
            OriginValidity::kNotFound);
}

TEST(OriginValidation, SeveralVrpsAnyMatchSuffices) {
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/16"), 16, net::Asn(65001)});
  index.add(Vrp{P("10.0.0.0/16"), 24, net::Asn(65002)});
  EXPECT_EQ(index.validate(P("10.0.0.0/16"), net::Asn(65002)),
            OriginValidity::kValid);
  EXPECT_EQ(index.validate(P("10.0.3.0/24"), net::Asn(65002)),
            OriginValidity::kValid);
  EXPECT_EQ(index.validate(P("10.0.3.0/24"), net::Asn(65001)),
            OriginValidity::kInvalid);
}

TEST(OriginValidation, As0NeverValidates) {
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/16"), 24, net::Asn(0)});  // AS0: do not route
  EXPECT_EQ(index.validate(P("10.0.0.0/16"), net::Asn(0)),
            OriginValidity::kInvalid);
  EXPECT_EQ(index.validate(P("10.0.0.0/16"), net::Asn(65001)),
            OriginValidity::kInvalid);
}

TEST(OriginValidation, CoveringLessSpecificVrpApplies) {
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/8"), 24, net::Asn(65001)});
  EXPECT_EQ(index.validate(P("10.20.30.0/24"), net::Asn(65001)),
            OriginValidity::kValid);
  EXPECT_EQ(index.validate(P("10.20.30.0/24"), net::Asn(65002)),
            OriginValidity::kInvalid);
}

TEST(OriginValidation, CoveredQuery) {
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/16"), 16, net::Asn(65001)});
  EXPECT_TRUE(index.covered(P("10.0.1.0/24")));
  EXPECT_FALSE(index.covered(P("10.1.0.0/24")));
  EXPECT_EQ(index.size(), 1u);
}

// --- Trust Anchor Locators (RFC 7730) ---------------------------------------

TEST(Base64, RoundTripsVariousLengths) {
  util::Prng prng(44);
  for (std::size_t len : {0u, 1u, 2u, 3u, 4u, 63u, 64u, 65u, 200u}) {
    util::Bytes data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(prng.next_u64());
    const std::string text = base64_encode(data);
    EXPECT_EQ(text.size() % 4, 0u);
    auto decoded = base64_decode(text);
    ASSERT_TRUE(decoded.ok()) << len;
    EXPECT_EQ(decoded.value(), data);
  }
}

TEST(Base64, KnownVector) {
  const std::string input = "foobar";
  EXPECT_EQ(base64_encode(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(input.data()), input.size())),
            "Zm9vYmFy");
  EXPECT_EQ(base64_encode(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(input.data()), 5)),
            "Zm9vYmE=");
}

TEST(Base64, RejectsMalformed) {
  EXPECT_FALSE(base64_decode("abc").ok());      // not multiple of 4
  EXPECT_FALSE(base64_decode("ab!=").ok());     // bad character
  EXPECT_FALSE(base64_decode("=abc").ok());     // stray padding
  EXPECT_FALSE(base64_decode("a=bc").ok());     // data after padding
}

TEST(Tal, EncodeParseRoundTrip) {
  util::Prng prng(45);
  TrustAnchor anchor = make_trust_anchor("RIPE", ResourceSet({P("62.0.0.0/8")}),
                                         kWindow, prng);
  const TrustAnchorLocator tal = tal_for(anchor);
  const std::string text = encode_tal(tal);
  auto parsed = parse_tal(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), tal);
  EXPECT_NE(text.find("rsync://"), std::string::npos);
}

TEST(Tal, ParseToleratesCommentsAndWrapping) {
  util::Prng prng(46);
  TrustAnchor anchor = make_trust_anchor("ARIN", ResourceSet({P("23.0.0.0/8")}),
                                         kWindow, prng);
  const TrustAnchorLocator tal = tal_for(anchor);
  std::string text = encode_tal(tal);
  // Wrap the key across two lines and add comments.
  const auto newline = text.find('\n');
  std::string wrapped = "# the ARIN locator\n" + text.substr(0, newline + 1);
  std::string key = text.substr(newline + 1);
  wrapped += key.substr(0, 30) + "\n" + key.substr(30);
  auto parsed = parse_tal(wrapped);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), tal);
}

TEST(Tal, ParseRejectsBadInput) {
  EXPECT_FALSE(parse_tal("").ok());
  EXPECT_FALSE(parse_tal("rsync://x/ta.cer\n").ok());        // no key
  EXPECT_FALSE(parse_tal("not-a-uri\nAAAA\n").ok());          // bad scheme
  EXPECT_FALSE(parse_tal("rsync://x/ta.cer\nAAAA\n").ok());   // key too short
}

TEST(Tal, BootstrapAcceptsMatchingAnchorOnly) {
  util::Prng prng(47);
  TrustAnchor ripe = make_trust_anchor("RIPE", ResourceSet({P("62.0.0.0/8")}),
                                       kWindow, prng);
  TrustAnchor rogue = make_trust_anchor("ROGUE", ResourceSet({P("62.0.0.0/8")}),
                                        kWindow, prng);
  const TrustAnchorLocator tal = tal_for(ripe);
  EXPECT_TRUE(ta_matches_tal(ripe.cert, tal));
  EXPECT_FALSE(ta_matches_tal(rogue.cert, tal));
}

TEST_F(ValidatorFixture, TalBootstrappedValidation) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  const auto ca = builder.add_ca("Org A", ResourceSet({P("62.1.0.0/16")}));
  builder.add_roa(ca, simple_content(64512, "62.1.0.0/16", 16));
  const std::vector<Repository> repos = {builder.build()};

  const RepositoryValidator validator(kNow);

  // Matching TAL: full validation.
  const std::vector<TrustAnchorLocator> good = {tal_for(anchor_)};
  const auto accepted = validator.validate(repos, good);
  EXPECT_EQ(accepted.vrps.size(), 1u);
  EXPECT_EQ(accepted.rejected_for(RejectReason::kNoMatchingTal), 0u);

  // A rogue repository claiming to be a TA is not walked at all.
  util::Prng prng2(48);
  TrustAnchor rogue = make_trust_anchor("ROGUE", ResourceSet({P("62.0.0.0/8")}),
                                        kWindow, prng2);
  const std::vector<TrustAnchorLocator> wrong = {tal_for(rogue)};
  const auto rejected = validator.validate(repos, wrong);
  EXPECT_TRUE(rejected.vrps.empty());
  EXPECT_EQ(rejected.rejected_for(RejectReason::kNoMatchingTal), 1u);
}

TEST_F(ValidatorFixture, TimeTravelPastExpiryRejectsEverything) {
  RepositoryBuilder builder(anchor_, kNow, prng_);
  const auto ca = builder.add_ca("Org A", ResourceSet({P("62.1.0.0/16")}));
  builder.add_roa(ca, simple_content(64512, "62.1.0.0/16", 16));
  const Repository repo = builder.build();

  // Validate two years later: every window has lapsed.
  const RepositoryValidator future(kNow + 2 * 365 * kSecondsPerDay);
  ValidationReport report;
  future.validate_into(repo, report);
  EXPECT_TRUE(report.vrps.empty());
}

// Property sweep: maxLength semantics across the full length range.
class MaxLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(MaxLengthSweep, BoundaryIsInclusive) {
  const int maxlen = GetParam();
  VrpIndex index;
  index.add(Vrp{P("10.0.0.0/16"), static_cast<std::uint8_t>(maxlen), net::Asn(65001)});
  for (int route_len = 16; route_len <= 28; ++route_len) {
    const net::Prefix route(net::IpAddress::v4(10, 0, 0, 0), route_len);
    const auto expected = route_len <= maxlen ? OriginValidity::kValid
                                              : OriginValidity::kInvalid;
    EXPECT_EQ(index.validate(route, net::Asn(65001)), expected)
        << "route_len=" << route_len << " maxlen=" << maxlen;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, MaxLengthSweep,
                         ::testing::Values(16, 18, 20, 22, 24, 28));

}  // namespace
}  // namespace ripki::rpki
