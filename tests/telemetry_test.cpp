// Telemetry exposition: event tracer ring/sampling/Chrome-JSON
// well-formedness, log flight recorder, health registry, the embedded
// HTTP server (route dispatch and real sockets), and snapshot deltas.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <thread>

#include "core/export.hpp"
#include "core/pipeline.hpp"
#include "obs/logring.hpp"
#include "obs/metrics.hpp"
#include "obs/sched.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ripki;

std::chrono::steady_clock::time_point now() {
  return std::chrono::steady_clock::now();
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Structural well-formedness for the Chrome trace JSON: balanced
/// braces/brackets, an even quote count, and balanced B/E event pairs.
void expect_well_formed_trace_json(const std::string& json) {
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
}

// --- event tracer ----------------------------------------------------------

TEST(EventTracer, RecordsBalancedBeginEndPairs) {
  obs::EventTracer tracer(/*capacity=*/64);
  ASSERT_TRUE(tracer.begin("outer", now()));
  ASSERT_TRUE(tracer.begin("outer.inner", now()));
  tracer.end("outer.inner", now());
  tracer.end("outer", now());

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, obs::TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[1].name, "outer.inner");
  EXPECT_EQ(events[3].phase, obs::TraceEvent::Phase::kEnd);
  EXPECT_EQ(tracer.recorded(), 4u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(EventTracer, TimestampsMonotonicPerThread) {
  obs::EventTracer tracer;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tracer.begin("span", now()));
    tracer.end("span", now());
  }
  std::map<std::uint32_t, std::uint64_t> last_ts;
  for (const auto& event : tracer.snapshot()) {
    const auto it = last_ts.find(event.tid);
    if (it != last_ts.end()) EXPECT_GE(event.ts_us, it->second);
    last_ts[event.tid] = event.ts_us;
  }
}

TEST(EventTracer, AssignsDenseTrackIdsPerThread) {
  obs::EventTracer tracer;
  tracer.begin("main", now());
  tracer.end("main", now());
  std::thread worker([&] {
    tracer.begin("worker", now());
    tracer.end("worker", now());
  });
  worker.join();

  std::uint32_t main_tid = 99, worker_tid = 99;
  for (const auto& event : tracer.snapshot()) {
    if (event.name == "main") main_tid = event.tid;
    if (event.name == "worker") worker_tid = event.tid;
  }
  EXPECT_EQ(main_tid, 0u);
  EXPECT_EQ(worker_tid, 1u);
}

TEST(EventTracer, RingWrapOverwritesOldestAndCountsDrops) {
  obs::EventTracer tracer(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(tracer.begin("s" + std::to_string(i), now()));
    tracer.end("s" + std::to_string(i), now());
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 12u);
  EXPECT_EQ(tracer.dropped(), 8u);
  // The buffer holds the most recent window.
  EXPECT_EQ(events.back().name, "s5");
  EXPECT_EQ(events.back().phase, obs::TraceEvent::Phase::kEnd);
}

TEST(EventTracer, SamplingSkipsSpansAndCountsThem) {
  obs::EventTracer tracer(/*capacity=*/64, /*sample_every=*/4);
  int recorded = 0;
  for (int i = 0; i < 20; ++i) {
    if (tracer.begin("sampled", now())) {
      tracer.end("sampled", now());
      ++recorded;
    }
  }
  EXPECT_EQ(recorded, 5);            // one of every 4 spans
  EXPECT_EQ(tracer.sampled_out(), 15u);
  EXPECT_EQ(tracer.snapshot().size(), 10u);  // begin+end per recorded span
}

TEST(EventTracer, BalanceEventsDropsOrphans) {
  using Phase = obs::TraceEvent::Phase;
  // An end whose begin was lost to wrap, then a complete pair, then an
  // unfinished begin.
  std::vector<obs::TraceEvent> events = {
      {10, 0, Phase::kEnd, "lost"},
      {20, 0, Phase::kBegin, "kept"},
      {30, 0, Phase::kEnd, "kept"},
      {40, 0, Phase::kBegin, "open"},
  };
  const auto balanced = obs::balance_events(events);
  ASSERT_EQ(balanced.size(), 2u);
  EXPECT_EQ(balanced[0].name, "kept");
  EXPECT_EQ(balanced[1].phase, Phase::kEnd);
}

TEST(EventTracer, ChromeTraceJsonIsWellFormedAfterWrap) {
  obs::EventTracer tracer(/*capacity=*/5);  // odd capacity forces orphans
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(tracer.begin("span" + std::to_string(i), now()));
    tracer.end("span" + std::to_string(i), now());
  }
  const std::string json = tracer.chrome_trace_json();
  expect_well_formed_trace_json(json);
  EXPECT_NE(json.find("\"cat\":\"ripki\""), std::string::npos);
}

TEST(EventTracer, ClearResetsBufferAndCounters) {
  obs::EventTracer tracer(/*capacity=*/2);
  for (int i = 0; i < 4; ++i) tracer.begin("x", now());
  EXPECT_GT(tracer.dropped(), 0u);
  tracer.clear();
  EXPECT_EQ(tracer.snapshot().size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

// --- span/tracer integration ------------------------------------------------

TEST(EventTracer, SpansEmitEventsThroughRegistryTracer) {
  obs::Registry registry;
  obs::EventTracer tracer;
  registry.set_tracer(&tracer);
  {
    obs::Span outer(&registry, "outer");
    obs::Span inner(&registry, "inner");
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[1].name, "outer.inner");  // tracer sees full dotted paths
  expect_well_formed_trace_json(tracer.chrome_trace_json());

  // Detached again: spans fall back to histogram-only recording.
  registry.set_tracer(nullptr);
  { obs::Span after(&registry, "after"); }
  EXPECT_EQ(tracer.snapshot().size(), 4u);
}

TEST(EventTracer, PipelineRunProducesWellFormedTimeline) {
  web::EcosystemConfig config;
  config.domain_count = 60;
  const auto ecosystem = web::Ecosystem::generate(config);

  obs::Registry registry;
  obs::EventTracer tracer;
  obs::HealthRegistry health;
  core::PipelineConfig pipeline_config;
  pipeline_config.registry = &registry;
  pipeline_config.tracer = &tracer;
  pipeline_config.health = &health;
  core::MeasurementPipeline pipeline(*ecosystem, pipeline_config);
  const auto dataset = pipeline.run();
  EXPECT_EQ(dataset.domains.size(), 60u);

  EXPECT_GT(tracer.recorded(), 0u);
  expect_well_formed_trace_json(tracer.chrome_trace_json());
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("pipeline.run"), std::string::npos);
  EXPECT_NE(json.find("stage2.dns"), std::string::npos);

  // Every stage reported healthy on this successful run.
  EXPECT_TRUE(health.healthy());
  const auto results = health.evaluate();
  ASSERT_EQ(results.size(), 4u);  // bgp, dns, pipeline, rpki
  registry.set_tracer(nullptr);
}

// --- log ring ---------------------------------------------------------------

TEST(LogRing, KeepsLastNAndCountsEvictions) {
  obs::LogRing ring(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    obs::LogRecord record;
    record.message = "m" + std::to_string(i);
    ring.append(record);
  }
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().message, "m2");
  EXPECT_EQ(records.back().message, "m4");
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(LogRing, CapturesBelowLoggerVerbosity) {
  auto& logger = obs::Logger::global();
  const auto previous = logger.level();
  logger.set_level(obs::LogLevel::kError);  // sink would drop everything below
  obs::LogRing ring(/*capacity=*/8);
  logger.attach_ring(&ring);
  logger.set_sink([](const obs::LogRecord&) {});  // silence stderr

  RIPKI_LOG_DEBUG("test", "debug detail");
  RIPKI_LOG_INFO("test", "info detail");

  logger.attach_ring(nullptr);
  logger.set_sink(nullptr);
  logger.set_level(previous);

  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, obs::LogLevel::kDebug);
  EXPECT_EQ(records[1].message, "info detail");
}

TEST(LogRing, DumpsOnceOnFirstError) {
  obs::LogRing ring(/*capacity=*/8);
  std::ostringstream dump;
  ring.set_dump_on_error(&dump);

  obs::LogRecord info;
  info.message = "context before failure";
  ring.append(info);
  EXPECT_TRUE(dump.str().empty());

  obs::LogRecord error;
  error.level = obs::LogLevel::kError;
  error.message = "boom";
  ring.append(error);
  EXPECT_NE(dump.str().find("context before failure"), std::string::npos);
  EXPECT_NE(dump.str().find("boom"), std::string::npos);

  const auto size_after_first = dump.str().size();
  ring.append(error);  // second error must not dump again
  EXPECT_EQ(dump.str().size(), size_after_first);
}

TEST(LogRing, RenderIncludesCountsHeader) {
  obs::LogRing ring(/*capacity=*/2);
  for (int i = 0; i < 3; ++i) {
    obs::LogRecord record;
    record.message = "r" + std::to_string(i);
    ring.append(record);
  }
  std::ostringstream os;
  ring.render(os);
  EXPECT_NE(os.str().find("last 2 of 3"), std::string::npos);
  EXPECT_NE(os.str().find("1 evicted"), std::string::npos);
  EXPECT_EQ(os.str().find("r0"), std::string::npos);  // evicted
}

// --- health -----------------------------------------------------------------

TEST(Health, EmptyRegistryIsVacuouslyHealthy) {
  obs::HealthRegistry health;
  EXPECT_TRUE(health.healthy());
  EXPECT_TRUE(health.evaluate().empty());
}

TEST(Health, SetAndCallbackChecksMerge) {
  obs::HealthRegistry health;
  health.set("bgp", true, "RIB loaded");
  bool rpki_ok = true;
  health.register_check("rpki", [&] {
    return obs::HealthStatus{rpki_ok, rpki_ok ? "fresh" : "stale"};
  });
  EXPECT_TRUE(health.healthy());

  rpki_ok = false;
  EXPECT_FALSE(health.healthy());
  const auto results = health.evaluate();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].subsystem, "bgp");
  EXPECT_TRUE(results[0].status.healthy);
  EXPECT_EQ(results[1].status.detail, "stale");
}

// --- telemetry server (dispatch, no sockets) --------------------------------

TEST(TelemetryServer, DispatchRoutesAndErrorCodes) {
  obs::EventTracer tracer;
  obs::LogRing ring;
  obs::HealthRegistry health;
  obs::TelemetryServer server({}, &tracer, &ring, &health);

  EXPECT_EQ(server.dispatch("GET", "/nope").status, 404);
  EXPECT_EQ(server.dispatch("POST", "/healthz").status, 405);
  const auto index = server.dispatch("GET", "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/tracez"), std::string::npos);
  EXPECT_NE(index.body.find("/logz"), std::string::npos);
  // Query strings are stripped before route lookup.
  EXPECT_EQ(server.dispatch("GET", "/healthz?verbose=1").status, 200);
}

TEST(TelemetryServer, HealthzFlipsTo503OnFailedCheck) {
  obs::HealthRegistry health;
  obs::TelemetryServer server({}, nullptr, nullptr, &health);

  health.set("dns", true, "resolving");
  EXPECT_EQ(server.dispatch("GET", "/healthz").status, 200);
  EXPECT_NE(server.dispatch("GET", "/healthz").body.find("healthy"),
            std::string::npos);

  health.set("dns", false, "resolver wedged");
  const auto response = server.dispatch("GET", "/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("FAIL dns"), std::string::npos);
  EXPECT_NE(response.body.find("resolver wedged"), std::string::npos);
}

TEST(TelemetryServer, TracezAndLogzServeTheirSources) {
  obs::EventTracer tracer;
  tracer.begin("visible", now());
  tracer.end("visible", now());
  obs::LogRing ring;
  obs::LogRecord record;
  record.message = "flight record";
  ring.append(record);

  obs::TelemetryServer server({}, &tracer, &ring, nullptr);
  const auto tracez = server.dispatch("GET", "/tracez");
  EXPECT_EQ(tracez.content_type, "application/json");
  EXPECT_NE(tracez.body.find("visible"), std::string::npos);
  expect_well_formed_trace_json(tracez.body);

  const auto logz = server.dispatch("GET", "/logz");
  EXPECT_NE(logz.body.find("flight record"), std::string::npos);
}

TEST(TelemetryServer, SchedzServesSchedulerTelemetry) {
  obs::TelemetryServer bare({});
  EXPECT_NE(bare.dispatch("GET", "/schedz").body.find("no scheduler"),
            std::string::npos);

  obs::SchedTelemetry sched;
  sched.begin_run(2);
  sched.attach_lane(0);
  sched.on_own_pop();
  sched.on_task_run(0, 500);
  sched.detach_lane();

  obs::TelemetryServer server({});
  server.set_sched(&sched);
  const auto schedz = server.dispatch("GET", "/schedz");
  EXPECT_EQ(schedz.status, 200);
  EXPECT_EQ(schedz.content_type, "application/json");
  EXPECT_NE(schedz.body.find("\"schedz\""), std::string::npos);
  EXPECT_NE(schedz.body.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(schedz.body.find("\"utilization_pct\""), std::string::npos);
  EXPECT_NE(schedz.body.find("\"stage_ms\""), std::string::npos);
  // The index advertises the route.
  EXPECT_NE(server.dispatch("GET", "/").body.find("/schedz"),
            std::string::npos);
}

TEST(TelemetryServer, TracezMergesSchedulerTracksWhenConfigured) {
  obs::EventTracer tracer;
  tracer.begin("sweep", now());
  tracer.end("sweep", now());

  obs::SchedTelemetry sched;
  sched.begin_run(1);
  sched.attach_lane(0);
  sched.on_task_run(0, 50);
  sched.detach_lane();

  obs::TelemetryServer server({}, &tracer, nullptr, nullptr);
  server.set_sched(&sched);
  const auto tracez = server.dispatch("GET", "/tracez");
  EXPECT_EQ(tracez.status, 200);
  expect_well_formed_trace_json(tracez.body);
  EXPECT_NE(tracez.body.find("sweep"), std::string::npos);
  EXPECT_NE(tracez.body.find("\"worker-0\""), std::string::npos);
  EXPECT_NE(tracez.body.find("\"pid\":2"), std::string::npos);
}

TEST(TelemetryServer, MetricsEndpointsServeRegistryExports) {
  obs::Registry registry;
  registry.counter("ripki.dns.queries").set(77);
  registry.describe("ripki.dns.queries", "DNS queries issued");
  obs::TelemetryServer server({});
  core::attach_metrics_endpoints(server, registry);

  const auto prom = server.dispatch("GET", "/metrics");
  EXPECT_EQ(prom.status, 200);
  EXPECT_NE(prom.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(prom.body.find("# HELP ripki_dns_queries DNS queries issued"),
            std::string::npos);
  EXPECT_NE(prom.body.find("ripki_dns_queries 77"), std::string::npos);

  const auto json = server.dispatch("GET", "/metrics.json");
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"ripki.dns.queries\":77"), std::string::npos);
}

// --- telemetry server (real sockets) ----------------------------------------

std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(TelemetryServer, ServesHttpOverRealSockets) {
  obs::Registry registry;
  registry.counter("ripki.live.requests").set(5);
  obs::EventTracer tracer;
  tracer.begin("live", now());
  tracer.end("live", now());
  obs::HealthRegistry health;
  health.set("pipeline", true, "ok");

  obs::TelemetryServer server({.port = 0}, &tracer, nullptr, &health);
  core::attach_metrics_endpoints(server, registry);
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("ripki_live_requests 5"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Length:"), std::string::npos);

  const std::string healthz = http_get(server.port(), "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  health.set("pipeline", false, "wedged");
  EXPECT_NE(http_get(server.port(), "/healthz").find("503"),
            std::string::npos);

  const std::string tracez = http_get(server.port(), "/tracez");
  EXPECT_NE(tracez.find("application/json"), std::string::npos);
  EXPECT_NE(tracez.find("live"), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/missing").find("404"),
            std::string::npos);
  EXPECT_GE(server.requests_served(), 5u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(TelemetryServer, StopIsCleanAndIdempotent) {
  obs::TelemetryServer server({.port = 0});
  ASSERT_TRUE(server.start());
  const auto port = server.port();
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  // The port is released: a second server can bind it again.
  obs::TelemetryServer second({.port = port});
  EXPECT_TRUE(second.start());
  second.stop();
}

// --- snapshot deltas --------------------------------------------------------

TEST(Delta, CountersSubtractGaugesKeepAfterValue) {
  obs::Registry registry;
  auto& counter = registry.counter("ripki.run.domains");
  auto& gauge = registry.gauge("ripki.run.depth");
  counter.inc(100);
  gauge.set(7);
  const auto before = registry.collect();
  counter.inc(40);
  gauge.set(3);
  const auto delta = obs::delta_snapshots(before, registry.collect());

  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[1].name, "ripki.run.domains");
  EXPECT_EQ(delta[1].counter_value, 40u);
  EXPECT_EQ(delta[0].gauge_value, 3);
}

TEST(Delta, HistogramsSubtractAndRecomputePercentiles) {
  obs::Registry registry;
  const double bounds[] = {10, 20, 30};
  auto& hist = registry.histogram("ripki.trace.stage", bounds);
  for (int i = 0; i < 100; ++i) hist.observe(5);  // run 1: all in bucket 0
  const auto before = registry.collect();
  for (int i = 0; i < 100; ++i) hist.observe(25);  // run 2: all in bucket 2
  const auto delta = obs::delta_snapshots(before, registry.collect());

  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].count, 100u);
  EXPECT_DOUBLE_EQ(delta[0].sum, 2500.0);
  ASSERT_EQ(delta[0].bucket_counts.size(), 4u);
  EXPECT_EQ(delta[0].bucket_counts[0], 0u);
  EXPECT_EQ(delta[0].bucket_counts[2], 100u);
  // Cumulatively p50 straddles both runs; the delta view sits in (20, 30].
  EXPECT_GT(delta[0].p50, 20.0);
  EXPECT_LE(delta[0].p50, 30.0);
}

TEST(Delta, MetricsNewSinceBeforePassThrough) {
  obs::Registry registry;
  registry.counter("ripki.run.a").inc(1);
  const auto before = registry.collect();
  registry.counter("ripki.run.b").inc(9);
  const auto delta = obs::delta_snapshots(before, registry.collect());
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[1].name, "ripki.run.b");
  EXPECT_EQ(delta[1].counter_value, 9u);
}

TEST(Delta, StageReportRendersFromDeltaSnapshots) {
  obs::Registry registry;
  registry.histogram("ripki.trace.stage2.dns").observe(100);
  const auto before = registry.collect();
  registry.histogram("ripki.trace.stage2.dns").observe(200);
  const auto delta = obs::delta_snapshots(before, registry.collect());
  const std::string report = obs::stage_report(delta);
  EXPECT_NE(report.find("stage2.dns"), std::string::npos);
  EXPECT_NE(report.find("1"), std::string::npos);  // one call in the window
}

}  // namespace
