// The execution substrate and the parallel measurement sweep: thread-pool
// lifecycle and work stealing, parallel_for_shards edge cases, hot-path
// cache correctness, and the determinism contract — a sharded parallel
// run must produce the very same dataset as the serial one.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "bgp/covering_cache.hpp"
#include "core/pipeline.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "rpki/validation_cache.hpp"

namespace ripki {
namespace {

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPoolTest, StartsAndStopsCleanly) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  // Destructor joins without any task ever submitted.
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, RunsManyTasksUnderContention) {
  exec::ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kTasks = 2000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (count.load() < kTasks && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), kTasks);
  EXPECT_EQ(pool.tasks_executed(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  constexpr int kTasks = 500;
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destruction must wait for every submitted task.
  }
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIsDenseInsidePoolAndNposOutside) {
  EXPECT_EQ(exec::ThreadPool::current_worker(), exec::ThreadPool::npos);
  exec::ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::size_t> seen;
  exec::parallel_for_shards(pool, 64, 64, [&](std::size_t, std::size_t, std::size_t) {
    std::lock_guard lock(mutex);
    seen.push_back(exec::ThreadPool::current_worker());
  });
  ASSERT_EQ(seen.size(), 64u);
  for (const std::size_t index : seen) EXPECT_LT(index, pool.size());
  EXPECT_EQ(exec::ThreadPool::current_worker(), exec::ThreadPool::npos);
}

TEST(ThreadPoolTest, StealsWorkFromBusyWorkers) {
  exec::ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> count{0};
  constexpr int kTasks = 100;
  // One long-running task pins whichever worker picks it up; round-robin
  // placement then queues tasks behind it that only stealing can drain.
  pool.submit([released] { released.wait(); });
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (count.load() < kTasks && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), kTasks);
  EXPECT_GT(pool.tasks_stolen(), 0u);
  release.set_value();
}

TEST(ThreadPoolTest, SubmitFromWorkerTaskRuns) {
  exec::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    count.fetch_add(1, std::memory_order_relaxed);
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (count.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, PublishesTaskCountersToRegistry) {
  obs::Registry registry;
  {
    exec::ThreadPool pool(2, &registry);
    std::atomic<int> count{0};
    exec::parallel_for_shards(pool, 32, 8,
                              [&](std::size_t, std::size_t begin, std::size_t end) {
                                count.fetch_add(static_cast<int>(end - begin));
                              });
    EXPECT_EQ(count.load(), 32);
  }
  EXPECT_EQ(registry.counter("ripki.exec.tasks_executed").value(), 8u);
}

// --- parallel_for_shards -----------------------------------------------------

TEST(ParallelForShardsTest, ZeroItemsNeverInvokes) {
  exec::ThreadPool pool(2);
  std::atomic<int> calls{0};
  exec::parallel_for_shards(pool, 0, 4, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForShardsTest, SingleShardCoversEverything) {
  exec::ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::array<std::size_t, 3>> calls;
  exec::parallel_for_shards(pool, 10, 1,
                            [&](std::size_t shard, std::size_t begin, std::size_t end) {
                              std::lock_guard lock(mutex);
                              calls.push_back({shard, begin, end});
                            });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::array<std::size_t, 3>{0, 0, 10}));
}

TEST(ParallelForShardsTest, MoreShardsThanItemsClampsToOnePerItem) {
  exec::ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> visited(3);
  exec::parallel_for_shards(pool, 3, 10,
                            [&](std::size_t, std::size_t begin, std::size_t end) {
                              calls.fetch_add(1);
                              EXPECT_EQ(end, begin + 1);
                              visited[begin].fetch_add(1);
                            });
  EXPECT_EQ(calls.load(), 3);
  for (auto& v : visited) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForShardsTest, ShardsAreContiguousAndCoverEveryIndexOnce) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kItems = 1003;  // prime-ish: uneven shard sizes
  std::vector<std::atomic<int>> visited(kItems);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  exec::parallel_for_shards(pool, kItems, 16,
                            [&](std::size_t, std::size_t begin, std::size_t end) {
                              {
                                std::lock_guard lock(mutex);
                                ranges.emplace_back(begin, end);
                              }
                              for (std::size_t i = begin; i < end; ++i) {
                                visited[i].fetch_add(1);
                              }
                            });
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(visited[i].load(), 1);
  ASSERT_EQ(ranges.size(), 16u);
  std::sort(ranges.begin(), ranges.end());
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, kItems);
}

// --- hot-path caches ---------------------------------------------------------

TEST(HotPathCacheTest, CoveringCacheMatchesRibAndCountsTraffic) {
  bgp::Rib rib;
  bgp::RibEntry entry;
  entry.prefix = net::Prefix::parse("10.0.0.0/8").value();
  entry.as_path = bgp::AsPath::sequence({65010, 65001});
  rib.add(entry);
  entry.prefix = net::Prefix::parse("10.1.0.0/16").value();
  rib.add(entry);

  bgp::CoveringCache cache(&rib);
  const auto addr = net::IpAddress::parse("10.1.2.3").value();
  const auto& first = cache.covering(addr);
  EXPECT_EQ(first.size(), rib.covering(addr).size());
  ASSERT_EQ(first.size(), 2u);
  const auto& again = cache.covering(addr);
  EXPECT_EQ(&first, &again);  // memoized: same stored vector
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // A different address misses independently.
  const auto other = net::IpAddress::parse("192.168.0.1").value();
  EXPECT_TRUE(cache.covering(other).empty());
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(HotPathCacheTest, ValidationCacheMatchesIndex) {
  rpki::VrpSet vrps;
  vrps.push_back({net::Prefix::parse("10.0.0.0/8").value(), 16, net::Asn(65001)});
  const rpki::VrpIndex index(vrps);
  rpki::ValidationCache cache(&index);

  const auto route = net::Prefix::parse("10.0.0.0/16").value();
  const auto more_specific = net::Prefix::parse("10.0.0.0/24").value();
  EXPECT_EQ(cache.validate(route, net::Asn(65001)),
            index.validate(route, net::Asn(65001)));
  EXPECT_EQ(cache.validate(route, net::Asn(65002)),
            index.validate(route, net::Asn(65002)));
  EXPECT_EQ(cache.validate(more_specific, net::Asn(65001)),
            index.validate(more_specific, net::Asn(65001)));
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);

  // Same (prefix, origin) again: hit, same verdict.
  EXPECT_EQ(cache.validate(route, net::Asn(65001)), rpki::OriginValidity::kValid);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 3u);
}

// --- parallel pipeline determinism -------------------------------------------

web::EcosystemConfig small_config() {
  web::EcosystemConfig config;
  config.domain_count = 3'000;
  config.isp_count = 300;
  config.hoster_count = 100;
  config.enterprise_count = 400;
  config.transit_count = 40;
  return config;
}

/// Generates once, measures serially once; every determinism test
/// compares a differently-threaded run against this baseline.
class ParallelPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eco_ = web::Ecosystem::generate(small_config()).release();
    core::MeasurementPipeline serial(*eco_, core::PipelineConfig{});
    serial_ = new core::Dataset(serial.run());
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete eco_;
    serial_ = nullptr;
    eco_ = nullptr;
  }

  static core::Dataset run_with_threads(std::size_t threads,
                                        obs::Registry* registry = nullptr) {
    core::PipelineConfig config;
    config.threads = threads;
    config.registry = registry;
    core::MeasurementPipeline pipeline(*eco_, config);
    return pipeline.run();
  }

  /// Worker count the sweep actually runs with: requested threads are
  /// clamped to the host's hardware concurrency.
  static std::size_t clamped(std::size_t threads) {
    const std::size_t hw = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
    return std::min(threads, hw);
  }

  static void expect_equal_to_serial(const core::Dataset& dataset) {
    ASSERT_EQ(dataset.domains.size(), serial_->domains.size());
    for (std::size_t i = 0; i < dataset.domains.size(); ++i) {
      ASSERT_EQ(dataset.domains[i], serial_->domains[i])
          << "first divergent record at index " << i << " ("
          << serial_->domains.name(i) << ")";
    }
    EXPECT_EQ(dataset.counters, serial_->counters);
    EXPECT_EQ(dataset.rank_space, serial_->rank_space);
    EXPECT_TRUE(dataset == *serial_);
  }

  static web::Ecosystem* eco_;
  static core::Dataset* serial_;
};

web::Ecosystem* ParallelPipelineTest::eco_ = nullptr;
core::Dataset* ParallelPipelineTest::serial_ = nullptr;

TEST_F(ParallelPipelineTest, OneWorkerMatchesSerial) {
  expect_equal_to_serial(run_with_threads(1));
}

TEST_F(ParallelPipelineTest, FourWorkersMatchSerialRecordForRecord) {
  expect_equal_to_serial(run_with_threads(4));
}

TEST_F(ParallelPipelineTest, MoreWorkersThanMakesSenseStillMatches) {
  expect_equal_to_serial(run_with_threads(16));
}

TEST_F(ParallelPipelineTest, ParallelRunPublishesSweepMetrics) {
  obs::Registry registry;
  const core::Dataset dataset = run_with_threads(4, &registry);
  expect_equal_to_serial(dataset);

  // The caches must see real traffic on a 3k-domain sweep...
  const auto covering_hits =
      registry.counter("ripki.bgp.covering_cache_hits").value();
  const auto covering_misses =
      registry.counter("ripki.bgp.covering_cache_misses").value();
  const auto validation_hits =
      registry.counter("ripki.rpki.validation_cache_hits").value();
  EXPECT_GT(covering_hits, 0u);
  EXPECT_GT(covering_misses, 0u);
  EXPECT_GT(validation_hits, 0u);
  // ...and the pool must actually have run shard tasks.
  EXPECT_GT(registry.counter("ripki.exec.tasks_executed").value(), 0u);
  EXPECT_EQ(registry.gauge("ripki.exec.threads").value(),
            static_cast<double>(clamped(4)));
  const auto hit_rate =
      registry.gauge("ripki.exec.covering_cache_hit_rate_pct").value();
  EXPECT_GE(hit_rate, 0);
  EXPECT_LE(hit_rate, 100);
}

TEST_F(ParallelPipelineTest, SerialRunAlsoExercisesCaches) {
  obs::Registry registry;
  core::PipelineConfig config;
  config.registry = &registry;
  core::MeasurementPipeline pipeline(*eco_, config);
  const core::Dataset dataset = pipeline.run();
  expect_equal_to_serial(dataset);
  const auto& caches = pipeline.cache_stats();
  EXPECT_GT(caches.covering_hits + caches.covering_misses, 0u);
  EXPECT_GT(caches.validation_hits + caches.validation_misses, 0u);
  EXPECT_EQ(registry.gauge("ripki.exec.threads").value(), 0);
}

TEST_F(ParallelPipelineTest, MaxDomainsRespectedInParallel) {
  core::PipelineConfig config;
  config.threads = 4;
  config.max_domains = 17;
  core::MeasurementPipeline pipeline(*eco_, config);
  const core::Dataset dataset = pipeline.run();
  ASSERT_EQ(dataset.domains.size(), 17u);
  for (std::size_t i = 0; i < 17; ++i) {
    EXPECT_EQ(dataset.domains[i], serial_->domains[i]);
  }
}

TEST_F(ParallelPipelineTest, PerWorkerCacheStatsSumToAggregate) {
  core::PipelineConfig config;
  config.threads = 4;
  core::MeasurementPipeline pipeline(*eco_, config);
  expect_equal_to_serial(pipeline.run());

  const auto& caches = pipeline.cache_stats();
  ASSERT_EQ(caches.workers.size(), clamped(4));
  std::uint64_t covering_hits = 0, covering_misses = 0;
  std::uint64_t validation_hits = 0, validation_misses = 0;
  for (const auto& worker : caches.workers) {
    covering_hits += worker.covering_hits;
    covering_misses += worker.covering_misses;
    validation_hits += worker.validation_hits;
    validation_misses += worker.validation_misses;
    EXPECT_GE(worker.covering_hit_rate(), 0.0);
    EXPECT_LE(worker.covering_hit_rate(), 1.0);
  }
  EXPECT_EQ(covering_hits, caches.covering_hits);
  EXPECT_EQ(covering_misses, caches.covering_misses);
  EXPECT_EQ(validation_hits, caches.validation_hits);
  EXPECT_EQ(validation_misses, caches.validation_misses);
  // A 3k-domain sweep split across the workers leaves none idle.
  for (const auto& worker : caches.workers) {
    EXPECT_GT(worker.covering_hits + worker.covering_misses, 0u);
  }
}

TEST_F(ParallelPipelineTest, SerialRunReportsOneCacheStatsWorker) {
  core::PipelineConfig config;
  config.max_domains = 50;
  core::MeasurementPipeline pipeline(*eco_, config);
  pipeline.run();
  const auto& caches = pipeline.cache_stats();
  ASSERT_EQ(caches.workers.size(), 1u);
  EXPECT_EQ(caches.workers[0].covering_hits, caches.covering_hits);
  EXPECT_EQ(caches.workers[0].validation_misses, caches.validation_misses);
}

TEST_F(ParallelPipelineTest, EveryRegisteredMetricCarriesHelpText) {
  // Full-coverage sweep over the whole registry: run the pipeline with
  // every optional path that registers metrics (RTR transport included)
  // and demand HELP text on everything it minted — `ripki.trace.*` span
  // histograms synthesize theirs in collect().
  obs::Registry registry;
  core::PipelineConfig config;
  config.threads = 2;
  config.registry = &registry;
  config.use_rtr = true;
  config.max_domains = 100;
  core::MeasurementPipeline pipeline(*eco_, config);
  pipeline.run();

  std::size_t checked = 0;
  for (const auto& snapshot : registry.collect()) {
    EXPECT_FALSE(snapshot.help.empty()) << snapshot.name << " has no HELP";
    ++checked;
  }
  // dns + bgp + rpki + rtr + pipeline + exec + trace families.
  EXPECT_GE(checked, 30u);
}

}  // namespace
}  // namespace ripki
